#include "avd/ml/standardizer.hpp"

#include <gtest/gtest.h>

#include "avd/ml/rng.hpp"

namespace avd::ml {
namespace {

std::vector<std::vector<float>> wild_scale_data(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> data;
  for (int i = 0; i < n; ++i) {
    data.push_back({static_cast<float>(rng.gaussian(1000.0, 200.0)),
                    static_cast<float>(rng.gaussian(0.5, 0.1)),
                    static_cast<float>(rng.gaussian(-3.0, 5.0))});
  }
  return data;
}

TEST(Standardizer, TransformedDataHasZeroMeanUnitVariance) {
  const auto data = wild_scale_data(500, 1);
  const Standardizer s = Standardizer::fit(data);
  std::vector<double> sum(3, 0.0), sum2(3, 0.0);
  for (const auto& x : data) {
    const auto z = s.transform(x);
    for (int i = 0; i < 3; ++i) {
      sum[i] += z[i];
      sum2[i] += static_cast<double>(z[i]) * z[i];
    }
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(sum[i] / 500.0, 0.0, 0.05) << i;
    EXPECT_NEAR(sum2[i] / 500.0, 1.0, 0.1) << i;
  }
}

TEST(Standardizer, ConstantFeaturePassesThrough) {
  std::vector<std::vector<float>> data{{5.0f, 1.0f}, {5.0f, 2.0f},
                                       {5.0f, 3.0f}};
  const Standardizer s = Standardizer::fit(data);
  const auto z = s.transform(std::vector<float>{5.0f, 2.0f});
  EXPECT_FLOAT_EQ(z[0], 0.0f);  // (5-5)/1
  EXPECT_FALSE(std::isnan(z[1]));
}

TEST(Standardizer, FitValidation) {
  EXPECT_THROW((void)Standardizer::fit({}), std::invalid_argument);
  std::vector<std::vector<float>> ragged{{1.0f, 2.0f}, {1.0f}};
  EXPECT_THROW((void)Standardizer::fit(ragged), std::invalid_argument);
}

TEST(Standardizer, TransformDimensionMismatchThrows) {
  const Standardizer s = Standardizer::fit(wild_scale_data(10, 2));
  EXPECT_THROW((void)s.transform(std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(Standardizer, ProblemTransformKeepsLabels) {
  SvmProblem p;
  p.add({1000.0f, 0.5f, -3.0f}, +1);
  p.add({800.0f, 0.4f, 2.0f}, -1);
  const Standardizer s = Standardizer::fit(p.features);
  const SvmProblem z = s.transform(p);
  EXPECT_EQ(z.labels, p.labels);
  EXPECT_EQ(z.size(), p.size());
}

TEST(Standardizer, FoldIntoGivesEquivalentRawModel) {
  // Train on standardised features, fold the affine map into the weights,
  // verify decisions agree on raw features.
  Rng rng(3);
  SvmProblem raw;
  for (int i = 0; i < 120; ++i) {
    const bool pos = i % 2 == 0;
    raw.add({static_cast<float>(rng.gaussian(pos ? 1200.0 : 800.0, 100.0)),
             static_cast<float>(rng.gaussian(pos ? 0.6 : 0.4, 0.05))},
            pos ? +1 : -1);
  }
  const Standardizer s = Standardizer::fit(raw.features);
  const LinearSvm std_model = SvmTrainer().train(s.transform(raw));
  const LinearSvm raw_model = s.fold_into(std_model);

  for (std::size_t i = 0; i < raw.size(); i += 7) {
    const double via_transform = std_model.decision(s.transform(raw.features[i]));
    const double direct = raw_model.decision(raw.features[i]);
    EXPECT_NEAR(via_transform, direct, 1e-3) << i;
  }
}

TEST(Standardizer, ImprovesConvergenceOnBadlyScaledData) {
  // Same data, same epoch budget: the standardised problem must reach
  // convergence no later than the raw one.
  Rng rng(4);
  SvmProblem raw;
  for (int i = 0; i < 100; ++i) {
    const bool pos = i % 2 == 0;
    raw.add({static_cast<float>(rng.gaussian(pos ? 5000.0 : 4000.0, 300.0)),
             static_cast<float>(rng.gaussian(pos ? 0.02 : -0.02, 0.01))},
            pos ? +1 : -1);
  }
  SvmTrainParams params;
  params.max_epochs = 150;
  SvmTrainReport raw_report, std_report;
  (void)SvmTrainer(params).train(raw, raw_report);
  const Standardizer s = Standardizer::fit(raw.features);
  (void)SvmTrainer(params).train(s.transform(raw), std_report);
  EXPECT_LE(std_report.epochs_run, raw_report.epochs_run);
}

TEST(Standardizer, FoldDimensionMismatchThrows) {
  const Standardizer s = Standardizer::fit(wild_scale_data(5, 5));
  const LinearSvm wrong({1.0f}, 0.0f);
  EXPECT_THROW((void)s.fold_into(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace avd::ml
