#include "avd/ml/calibration.hpp"

#include <gtest/gtest.h>

#include "avd/ml/rng.hpp"

namespace avd::ml {
namespace {

// Synthetic decision values: positives centred at +m, negatives at -m.
struct Scored {
  std::vector<double> decisions;
  std::vector<int> labels;
};

Scored scored_data(int n_per_class, double margin, double noise,
                   std::uint64_t seed) {
  Scored s;
  Rng rng(seed);
  for (int i = 0; i < n_per_class; ++i) {
    s.decisions.push_back(rng.gaussian(margin, noise));
    s.labels.push_back(+1);
    s.decisions.push_back(rng.gaussian(-margin, noise));
    s.labels.push_back(-1);
  }
  return s;
}

TEST(Platt, ProbabilityMonotoneInDecision) {
  const Scored s = scored_data(200, 1.5, 1.0, 1);
  const PlattScaler scaler = fit_platt(s.decisions, s.labels);
  double prev = scaler.probability(-5.0);
  for (double f = -4.0; f <= 5.0; f += 1.0) {
    const double p = scaler.probability(f);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Platt, HighMarginPositivesNearOne) {
  const Scored s = scored_data(200, 2.0, 0.5, 2);
  const PlattScaler scaler = fit_platt(s.decisions, s.labels);
  EXPECT_GT(scaler.probability(3.0), 0.95);
  EXPECT_LT(scaler.probability(-3.0), 0.05);
}

TEST(Platt, BoundaryNearHalfOnBalancedData) {
  const Scored s = scored_data(300, 1.0, 0.8, 3);
  const PlattScaler scaler = fit_platt(s.decisions, s.labels);
  EXPECT_NEAR(scaler.probability(0.0), 0.5, 0.1);
}

TEST(Platt, ProbabilitiesAlwaysInUnitInterval) {
  const Scored s = scored_data(50, 1.0, 1.0, 4);
  const PlattScaler scaler = fit_platt(s.decisions, s.labels);
  for (double f : {-1000.0, -1.0, 0.0, 1.0, 1000.0}) {
    const double p = scaler.probability(f);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Platt, BetterThanUncalibratedGuessByBrier) {
  const Scored s = scored_data(300, 1.2, 1.0, 5);
  const PlattScaler scaler = fit_platt(s.decisions, s.labels);
  // Always-0.5 scores Brier 0.25; the fit must beat it clearly.
  EXPECT_LT(brier_score(scaler, s.decisions, s.labels), 0.2);
}

TEST(Platt, ImbalancedPriorShiftsBoundary) {
  // 10:1 negatives: at decision 0 the calibrated probability must be well
  // below 0.5 (the prior pulls it down).
  Scored s;
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    s.decisions.push_back(rng.gaussian(1.0, 1.0));
    s.labels.push_back(+1);
  }
  for (int i = 0; i < 300; ++i) {
    s.decisions.push_back(rng.gaussian(-1.0, 1.0));
    s.labels.push_back(-1);
  }
  const PlattScaler scaler = fit_platt(s.decisions, s.labels);
  EXPECT_LT(scaler.probability(0.0), 0.45);
}

TEST(Platt, InputValidation) {
  std::vector<double> d{1.0, -1.0};
  std::vector<int> one_class{1, 1};
  EXPECT_THROW((void)fit_platt(d, one_class), std::invalid_argument);
  std::vector<int> bad_label{1, 0};
  EXPECT_THROW((void)fit_platt(d, bad_label), std::invalid_argument);
  std::vector<int> short_labels{1};
  EXPECT_THROW((void)fit_platt(d, short_labels), std::invalid_argument);
  EXPECT_THROW((void)fit_platt({}, {}), std::invalid_argument);
}

TEST(Platt, CalibrateSvmEndToEnd) {
  // Train an SVM, calibrate on held-out data, check the probability scale.
  SvmProblem train, holdout;
  Rng rng(7);
  auto fill = [&](SvmProblem& p, int n) {
    for (int i = 0; i < n; ++i) {
      p.add({static_cast<float>(rng.gaussian(1.0, 0.8))}, +1);
      p.add({static_cast<float>(rng.gaussian(-1.0, 0.8))}, -1);
    }
  };
  fill(train, 100);
  fill(holdout, 100);
  const LinearSvm svm = SvmTrainer().train(train);
  const PlattScaler scaler = calibrate_svm(svm, holdout);

  EXPECT_GT(scaler.probability(svm.decision(std::vector<float>{2.0f})), 0.8);
  EXPECT_LT(scaler.probability(svm.decision(std::vector<float>{-2.0f})), 0.2);
}

TEST(Platt, BrierScoreValidation) {
  PlattScaler s{-1.0, 0.0};
  std::vector<double> d{1.0};
  std::vector<int> l{1, -1};
  EXPECT_THROW((void)brier_score(s, d, l), std::invalid_argument);
}

}  // namespace
}  // namespace avd::ml
