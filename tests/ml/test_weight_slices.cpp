#include "avd/ml/weight_slices.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "avd/ml/svm.hpp"

namespace avd::ml {
namespace {

LinearSvm make_svm(std::size_t dim, float bias = 0.25f) {
  std::vector<float> w(dim);
  for (std::size_t i = 0; i < dim; ++i)
    w[i] = static_cast<float>(i % 17) * 0.1f - 0.5f;
  return LinearSvm(std::move(w), bias);
}

TEST(WeightSlices, SlicesPartitionTheWeights) {
  const LinearSvm svm = make_svm(36 * 4);
  const WeightSlices slices(svm, 36);
  EXPECT_EQ(slices.block_count(), 4u);
  EXPECT_EQ(slices.block_length(), 36u);
  EXPECT_EQ(slices.bias(), svm.bias());
  for (std::size_t b = 0; b < slices.block_count(); ++b) {
    const auto s = slices.slice(b);
    ASSERT_EQ(s.size(), 36u);
    for (std::size_t i = 0; i < s.size(); ++i)
      EXPECT_EQ(s[i], svm.weights()[b * 36 + i]);
  }
}

TEST(WeightSlices, StreamedAccumulationIsBitExactDecision) {
  // The scanner's correctness hinges on this: summing per-block products
  // left-to-right into ONE double accumulator performs the exact FP op
  // sequence of LinearSvm::decision, so the scores are bit-equal, not just
  // close.
  const LinearSvm svm = make_svm(36 * 49, -1.75f);
  const WeightSlices slices(svm, 36);
  std::vector<float> x(svm.dimension());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = static_cast<float>((i * 7919) % 1000) / 999.0f;

  double acc = 0.0;
  for (std::size_t b = 0; b < slices.block_count(); ++b)
    slices.accumulate(b, std::span<const float>(x).subspan(b * 36, 36), acc);
  const double streamed = acc + slices.bias();

  EXPECT_EQ(streamed, svm.decision(x));
}

TEST(WeightSlices, LaneAccumulationBitExactPerLane) {
  // accumulate_lanes scores several windows at once so their accumulator
  // chains overlap, and it reads exact double conversions of the float
  // operands; each lane must still produce the scalar path's result — lane
  // j's streamed score equals decision(x_j) bit for bit.
  constexpr int kLanes = 8;
  const LinearSvm svm = make_svm(36 * 49, 0.5f);
  const WeightSlices slices(svm, 36);
  std::vector<std::vector<float>> windows(kLanes);
  std::vector<std::vector<double>> windows_d(kLanes);
  for (int j = 0; j < kLanes; ++j) {
    windows[j].resize(svm.dimension());
    for (std::size_t i = 0; i < windows[j].size(); ++i)
      windows[j][i] =
          static_cast<float>((i * 7919 + static_cast<std::size_t>(j) * 31) %
                             1000) /
          999.0f;
    windows_d[j].assign(windows[j].begin(), windows[j].end());
  }

  double acc[kLanes] = {};
  const double* vals[kLanes];
  for (std::size_t b = 0; b < slices.block_count(); ++b) {
    for (int j = 0; j < kLanes; ++j) vals[j] = windows_d[j].data() + b * 36;
    slices.accumulate_lanes<kLanes>(b, vals, acc);
  }
  for (int j = 0; j < kLanes; ++j)
    EXPECT_EQ(acc[j] + slices.bias(), svm.decision(windows[j])) << "lane " << j;
}

TEST(WeightSlices, StridedLaneAccumulationBitExactPerLane) {
  // The constant-stride fast path (consecutive scan anchors) must produce
  // the same bits as the pointer-table variant and the scalar decision.
  constexpr int kLanes = 8;
  const LinearSvm svm = make_svm(36 * 49, -0.125f);
  const WeightSlices slices(svm, 36);
  const std::size_t dim = svm.dimension();
  std::vector<std::vector<float>> windows(kLanes);
  std::vector<double> flat(kLanes * dim);  // lane j at flat[j * dim]
  for (int j = 0; j < kLanes; ++j) {
    windows[j].resize(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      windows[j][i] =
          static_cast<float>((i * 271 + static_cast<std::size_t>(j) * 97) %
                             1000) /
          999.0f;
      flat[static_cast<std::size_t>(j) * dim + i] = windows[j][i];
    }
  }

  double acc[kLanes] = {};
  for (std::size_t b = 0; b < slices.block_count(); ++b)
    slices.accumulate_lanes_strided<kLanes>(b, flat.data() + b * 36, dim, acc);
  for (int j = 0; j < kLanes; ++j)
    EXPECT_EQ(acc[j] + slices.bias(), svm.decision(windows[j])) << "lane " << j;
}

TEST(WeightSlices, RejectsUntrainedSvm) {
  EXPECT_THROW(WeightSlices(LinearSvm(), 36), std::invalid_argument);
}

TEST(WeightSlices, RejectsNonDividingBlockLength) {
  const LinearSvm svm = make_svm(100);
  EXPECT_THROW(WeightSlices(svm, 36), std::invalid_argument);
  EXPECT_THROW(WeightSlices(svm, 0), std::invalid_argument);
}

TEST(WeightSlices, RejectsWrongValueLength) {
  const LinearSvm svm = make_svm(72);
  const WeightSlices slices(svm, 36);
  const std::vector<float> wrong(35, 1.0f);
  double acc = 0.0;
  EXPECT_THROW(slices.accumulate(0, wrong, acc), std::invalid_argument);
}

}  // namespace
}  // namespace avd::ml
