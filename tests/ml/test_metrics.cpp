#include "avd/ml/metrics.hpp"

#include <gtest/gtest.h>

namespace avd::ml {
namespace {

TEST(BinaryCounts, RecordRoutesCorrectly) {
  BinaryCounts c;
  c.record(true, true);    // TP
  c.record(true, false);   // FN
  c.record(false, true);   // FP
  c.record(false, false);  // TN
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(BinaryCounts, AccuracyMatchesPaperEquationOne) {
  // Paper Table I, day model on day test: TP 195, TN 21, FP 4, FN 5 -> 96.00%.
  const BinaryCounts c{195, 21, 4, 5};
  EXPECT_NEAR(c.accuracy(), 0.96, 1e-9);
}

TEST(BinaryCounts, DuskModelOnDayRow) {
  // Paper Table I: TP 23, TN 24, FP 1, FN 177 -> 20.89%.
  const BinaryCounts c{23, 24, 1, 177};
  EXPECT_NEAR(c.accuracy(), 0.2089, 1e-4);
}

TEST(BinaryCounts, EmptyCountsAreZero) {
  const BinaryCounts c;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(BinaryCounts, PrecisionRecallF1) {
  const BinaryCounts c{8, 0, 2, 2};  // P = 0.8, R = 0.8, F1 = 0.8
  EXPECT_DOUBLE_EQ(c.precision(), 0.8);
  EXPECT_DOUBLE_EQ(c.recall(), 0.8);
  EXPECT_DOUBLE_EQ(c.f1(), 0.8);
}

TEST(BinaryCounts, Accumulation) {
  BinaryCounts a{1, 2, 3, 4};
  const BinaryCounts b{10, 20, 30, 40};
  a += b;
  EXPECT_EQ(a.tp, 11u);
  EXPECT_EQ(a.tn, 22u);
  EXPECT_EQ(a.fp, 33u);
  EXPECT_EQ(a.fn, 44u);
}

TEST(ConfusionMatrix, RecordAndQuery) {
  ConfusionMatrix m(3);
  m.record(0, 0);
  m.record(0, 1);
  m.record(2, 2);
  m.record(2, 2);
  EXPECT_EQ(m.at(0, 0), 1u);
  EXPECT_EQ(m.at(0, 1), 1u);
  EXPECT_EQ(m.at(2, 2), 2u);
  EXPECT_EQ(m.total(), 4u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
}

TEST(ConfusionMatrix, OutOfRangeThrows) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.record(2, 0), std::out_of_range);
  EXPECT_THROW(m.record(0, -1), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 2), std::out_of_range);
}

TEST(ConfusionMatrix, TooFewClassesThrows) {
  EXPECT_THROW(ConfusionMatrix(1), std::invalid_argument);
}

TEST(ConfusionMatrix, OneVsRestDecomposition) {
  ConfusionMatrix m(3);
  // truth 0 predicted 0 x3; truth 0 predicted 1; truth 1 predicted 1 x2;
  // truth 2 predicted 0.
  for (int i = 0; i < 3; ++i) m.record(0, 0);
  m.record(0, 1);
  m.record(1, 1);
  m.record(1, 1);
  m.record(2, 0);
  const BinaryCounts c0 = m.one_vs_rest(0);
  EXPECT_EQ(c0.tp, 3u);
  EXPECT_EQ(c0.fn, 1u);
  EXPECT_EQ(c0.fp, 1u);
  EXPECT_EQ(c0.tn, 2u);
}

TEST(ConfusionMatrix, OneVsRestCountsSumToTotal) {
  ConfusionMatrix m(4);
  for (int t = 0; t < 4; ++t)
    for (int p = 0; p < 4; ++p)
      for (int k = 0; k < t + p + 1; ++k) m.record(t, p);
  for (int c = 0; c < 4; ++c)
    EXPECT_EQ(m.one_vs_rest(c).total(), m.total());
}

TEST(ConfusionMatrix, ToStringContainsCounts) {
  ConfusionMatrix m(2);
  m.record(1, 0);
  const std::string s = m.to_string();
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_NE(s.find("truth"), std::string::npos);
}

}  // namespace
}  // namespace avd::ml
