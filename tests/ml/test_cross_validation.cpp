#include "avd/ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include "avd/ml/rng.hpp"

namespace avd::ml {
namespace {

SvmProblem gaussian_problem(int n_per_class, double margin, std::uint64_t seed) {
  SvmProblem p;
  Rng rng(seed);
  for (int i = 0; i < n_per_class; ++i) {
    p.add({static_cast<float>(rng.gaussian(margin, 1.0)),
           static_cast<float>(rng.gaussian(margin, 1.0))},
          +1);
    p.add({static_cast<float>(rng.gaussian(-margin, 1.0)),
           static_cast<float>(rng.gaussian(-margin, 1.0))},
          -1);
  }
  return p;
}

TEST(CrossValidation, FoldCountRespected) {
  const CrossValidationResult r =
      cross_validate(gaussian_problem(50, 2.0, 1), 5);
  EXPECT_EQ(r.fold_accuracies.size(), 5u);
  EXPECT_EQ(r.pooled.total(), 100u);  // every example tested exactly once
}

TEST(CrossValidation, EasyProblemScoresHigh) {
  const CrossValidationResult r =
      cross_validate(gaussian_problem(60, 3.0, 2), 5);
  EXPECT_GT(r.mean_accuracy(), 0.95);
  EXPECT_LT(r.stddev_accuracy(), 0.1);
}

TEST(CrossValidation, RandomLabelsScoreNearChance) {
  // Features carry no signal: CV accuracy should hover around 50%.
  SvmProblem p;
  Rng rng(3);
  for (int i = 0; i < 200; ++i)
    p.add({static_cast<float>(rng.gaussian()), static_cast<float>(rng.gaussian())},
          i % 2 == 0 ? 1 : -1);
  const CrossValidationResult r = cross_validate(p, 5);
  EXPECT_GT(r.mean_accuracy(), 0.3);
  EXPECT_LT(r.mean_accuracy(), 0.7);
}

TEST(CrossValidation, DeterministicUnderSeed) {
  const SvmProblem p = gaussian_problem(40, 1.0, 4);
  const CrossValidationResult a = cross_validate(p, 4, {}, 999);
  const CrossValidationResult b = cross_validate(p, 4, {}, 999);
  EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

TEST(CrossValidation, StratificationBalancesFolds) {
  // 9:1 imbalance: with stratification every fold still sees positives,
  // so no fold can score 0 recall by construction.
  SvmProblem p;
  Rng rng(5);
  for (int i = 0; i < 20; ++i)
    p.add({static_cast<float>(rng.gaussian(3.0, 0.5))}, +1);
  for (int i = 0; i < 180; ++i)
    p.add({static_cast<float>(rng.gaussian(-3.0, 0.5))}, -1);
  const CrossValidationResult r = cross_validate(p, 5);
  EXPECT_GT(r.pooled.recall(), 0.9);
}

TEST(CrossValidation, InvalidInputsThrow) {
  const SvmProblem p = gaussian_problem(10, 1.0, 6);
  EXPECT_THROW((void)cross_validate(p, 1), std::invalid_argument);
  EXPECT_THROW((void)cross_validate(SvmProblem{}, 3), std::invalid_argument);
  EXPECT_THROW((void)cross_validate(p, 11), std::invalid_argument);  // > class size
}

TEST(GridSearch, PicksReasonableC) {
  const SvmProblem p = gaussian_problem(60, 1.0, 7);
  const GridSearchResult r = grid_search_c(p, {0.01, 0.1, 1.0, 10.0}, 4);
  EXPECT_EQ(r.tried.size(), 4u);
  EXPECT_GT(r.best_accuracy, 0.5);
  bool found = false;
  for (const auto& [c, acc] : r.tried)
    if (c == r.best_c) {
      found = true;
      EXPECT_DOUBLE_EQ(acc, r.best_accuracy);
    }
  EXPECT_TRUE(found);
}

TEST(GridSearch, TieBreaksToSmallerC) {
  // A trivially separable problem: every C achieves 100%; the smallest wins.
  const SvmProblem p = gaussian_problem(40, 5.0, 8);
  const GridSearchResult r = grid_search_c(p, {10.0, 0.1, 1.0}, 4);
  EXPECT_DOUBLE_EQ(r.best_c, 0.1);
}

TEST(GridSearch, EmptyCandidatesThrow) {
  EXPECT_THROW((void)grid_search_c(gaussian_problem(10, 1.0, 9), {}),
               std::invalid_argument);
}

TEST(CrossValidationResult, Statistics) {
  CrossValidationResult r;
  r.fold_accuracies = {0.8, 0.9, 1.0};
  EXPECT_NEAR(r.mean_accuracy(), 0.9, 1e-12);
  EXPECT_NEAR(r.stddev_accuracy(), 0.0816, 1e-3);
  EXPECT_DOUBLE_EQ(CrossValidationResult{}.mean_accuracy(), 0.0);
}

}  // namespace
}  // namespace avd::ml
