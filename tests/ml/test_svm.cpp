#include "avd/ml/svm.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "avd/ml/rng.hpp"

namespace avd::ml {
namespace {

SvmProblem linearly_separable_2d(int n_per_class, std::uint64_t seed,
                                 double margin = 1.0) {
  SvmProblem p;
  Rng rng(seed);
  for (int i = 0; i < n_per_class; ++i) {
    p.add({static_cast<float>(rng.gaussian(margin, 0.3)),
           static_cast<float>(rng.gaussian(margin, 0.3))},
          +1);
    p.add({static_cast<float>(rng.gaussian(-margin, 0.3)),
           static_cast<float>(rng.gaussian(-margin, 0.3))},
          -1);
  }
  return p;
}

TEST(SvmProblem, RejectsBadLabels) {
  SvmProblem p;
  EXPECT_THROW(p.add({1.0f}, 0), std::invalid_argument);
  EXPECT_THROW(p.add({1.0f}, 2), std::invalid_argument);
}

TEST(SvmProblem, RejectsInconsistentDimensions) {
  SvmProblem p;
  p.add({1.0f, 2.0f}, 1);
  EXPECT_THROW(p.add({1.0f}, -1), std::invalid_argument);
}

TEST(SvmTrainer, SeparablePerfectlyClassified) {
  const SvmProblem p = linearly_separable_2d(50, 42);
  const LinearSvm svm = SvmTrainer().train(p);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_EQ(svm.predict(p.features[i]), p.labels[i]) << i;
}

TEST(SvmTrainer, ReportsConvergence) {
  SvmTrainReport report;
  const SvmProblem p = linearly_separable_2d(30, 7);
  (void)SvmTrainer().train(p, report);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.epochs_run, 0);
  EXPECT_LT(report.final_pg_max, 1e-3);
}

TEST(SvmTrainer, BiasShiftsDecisionBoundary) {
  // All-positive cluster far from origin on one axis: the learned bias must
  // let a point at the origin be classified negative.
  SvmProblem p;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    p.add({static_cast<float>(rng.gaussian(4.0, 0.2))}, +1);
    p.add({static_cast<float>(rng.gaussian(2.0, 0.2))}, -1);
  }
  const LinearSvm svm = SvmTrainer().train(p);
  EXPECT_EQ(svm.predict(std::vector<float>{4.0f}), 1);
  EXPECT_EQ(svm.predict(std::vector<float>{2.0f}), -1);
  EXPECT_EQ(svm.predict(std::vector<float>{0.0f}), -1);
}

TEST(SvmTrainer, DeterministicUnderFixedSeed) {
  const SvmProblem p = linearly_separable_2d(30, 11, 0.4);
  SvmTrainParams params;
  params.seed = 77;
  const LinearSvm a = SvmTrainer(params).train(p);
  const LinearSvm b = SvmTrainer(params).train(p);
  ASSERT_EQ(a.dimension(), b.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i)
    EXPECT_FLOAT_EQ(a.weights()[i], b.weights()[i]);
  EXPECT_FLOAT_EQ(a.bias(), b.bias());
}

TEST(SvmTrainer, NoisyDataStillMostlyCorrect) {
  // Overlapping clusters: expect > 85% accuracy, not perfection.
  const SvmProblem p = linearly_separable_2d(100, 5, 0.5);
  const LinearSvm svm = SvmTrainer().train(p);
  int correct = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    correct += svm.predict(p.features[i]) == p.labels[i];
  EXPECT_GT(static_cast<double>(correct) / p.size(), 0.85);
}

TEST(SvmTrainer, PositiveWeightTradesRecallForPrecision) {
  // Imbalanced overlapping data: upweighting the positive class must not
  // decrease the number of predicted positives.
  SvmProblem p;
  Rng rng(9);
  for (int i = 0; i < 20; ++i)
    p.add({static_cast<float>(rng.gaussian(0.6, 1.0))}, +1);
  for (int i = 0; i < 200; ++i)
    p.add({static_cast<float>(rng.gaussian(-0.6, 1.0))}, -1);

  auto positives_with_weight = [&](double w) {
    SvmTrainParams params;
    params.positive_weight = w;
    const LinearSvm svm = SvmTrainer(params).train(p);
    int n = 0;
    for (const auto& x : p.features) n += svm.predict(x) == 1;
    return n;
  };
  EXPECT_GE(positives_with_weight(10.0), positives_with_weight(1.0));
}

TEST(SvmTrainer, EmptyProblemThrows) {
  EXPECT_THROW(SvmTrainer().train(SvmProblem{}), std::invalid_argument);
}

TEST(SvmTrainer, NonPositiveCostThrows) {
  SvmTrainParams params;
  params.c = 0.0;
  EXPECT_THROW(SvmTrainer(params).train(linearly_separable_2d(5, 1)),
               std::invalid_argument);
}

TEST(LinearSvm, DecisionDimensionMismatchThrows) {
  const LinearSvm svm({1.0f, 2.0f}, 0.5f);
  EXPECT_THROW((void)svm.decision(std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(LinearSvm, DecisionIsAffine) {
  const LinearSvm svm({2.0f, -1.0f}, 0.5f);
  EXPECT_DOUBLE_EQ(svm.decision(std::vector<float>{1.0f, 1.0f}), 1.5);
  EXPECT_DOUBLE_EQ(svm.decision(std::vector<float>{0.0f, 0.0f}), 0.5);
}

TEST(LinearSvm, UntrainedReportsNotTrained) {
  EXPECT_FALSE(LinearSvm{}.trained());
  EXPECT_TRUE(LinearSvm({1.0f}, 0.0f).trained());
}

TEST(LinearSvm, SaveLoadRoundTrip) {
  const LinearSvm svm({0.25f, -3.5f, 1e-6f}, -0.75f);
  std::stringstream ss;
  svm.save(ss);
  const LinearSvm back = LinearSvm::load(ss);
  ASSERT_EQ(back.dimension(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_FLOAT_EQ(back.weights()[i], svm.weights()[i]);
  EXPECT_FLOAT_EQ(back.bias(), svm.bias());
}

TEST(LinearSvm, LoadBadHeaderThrows) {
  std::stringstream ss("notsvm 2 0.0 1 2");
  EXPECT_THROW(LinearSvm::load(ss), std::runtime_error);
}

TEST(LinearSvm, LoadTruncatedThrows) {
  std::stringstream ss("svm 5 0.0 1 2");
  EXPECT_THROW(LinearSvm::load(ss), std::runtime_error);
}

// Parameterised sweep over C: training always converges to a usable model on
// separable data; larger C must not break separability.
class SvmCostSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvmCostSweep, SeparableStaysSeparated) {
  SvmTrainParams params;
  params.c = GetParam();
  const SvmProblem p = linearly_separable_2d(40, 13);
  const LinearSvm svm = SvmTrainer(params).train(p);
  int correct = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    correct += svm.predict(p.features[i]) == p.labels[i];
  EXPECT_EQ(correct, static_cast<int>(p.size()));
}

INSTANTIATE_TEST_SUITE_P(Costs, SvmCostSweep,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0, 100.0));

}  // namespace
}  // namespace avd::ml
