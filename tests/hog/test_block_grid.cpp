#include "avd/hog/block_grid.hpp"

#include <gtest/gtest.h>

namespace avd::hog {
namespace {

img::ImageU8 textured(int w, int h, int seed = 0) {
  img::ImageU8 im(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * 31 + y * 57 + seed * 13 + x * y) % 256);
  return im;
}

TEST(BlockGrid, AnchorsAtEveryCellPosition) {
  const CellGrid grid = compute_cell_grid(textured(96, 64), {});
  const BlockGrid blocks = compute_block_grid(grid, {});
  // 12x8 cells, 2x2 blocks anchored at every cell: 11x7 anchors.
  EXPECT_EQ(blocks.anchors_x(), grid.cells_x() - 1);
  EXPECT_EQ(blocks.anchors_y(), grid.cells_y() - 1);
  EXPECT_EQ(blocks.block_len(), 4 * 9);
}

TEST(BlockGrid, TooSmallGridHasNoAnchors) {
  const CellGrid grid = compute_cell_grid(textured(8, 8), {});
  const BlockGrid blocks = compute_block_grid(grid, {});
  EXPECT_EQ(blocks.anchors_x(), 0);
  EXPECT_EQ(blocks.anchors_y(), 0);
}

TEST(BlockGrid, BlockIsL2HysOfGatheredCells) {
  // A stored block must be exactly l2hys_normalise() of its cells gathered
  // in (cell_y, cell_x) order — the window_descriptor layout.
  const HogParams p;
  const CellGrid grid = compute_cell_grid(textured(64, 64, 3), p);
  const BlockGrid blocks = compute_block_grid(grid, p);
  for (int ay : {0, 2, blocks.anchors_y() - 1}) {
    for (int ax : {0, 3, blocks.anchors_x() - 1}) {
      std::vector<float> manual;
      for (int by = 0; by < p.block_cells; ++by)
        for (int bx = 0; bx < p.block_cells; ++bx) {
          const auto cell = grid.cell(ax + bx, ay + by);
          manual.insert(manual.end(), cell.begin(), cell.end());
        }
      l2hys_normalise(manual, p.l2hys_clip);
      const auto stored = blocks.block(ax, ay);
      ASSERT_EQ(stored.size(), manual.size());
      for (std::size_t i = 0; i < manual.size(); ++i)
        EXPECT_EQ(stored[i], manual[i]) << "anchor (" << ax << "," << ay
                                        << ") element " << i;
    }
  }
}

TEST(BlockGrid, WindowDescriptorBitIdenticalToCellGridPath) {
  // The equivalence the whole scanner rests on: a descriptor assembled from
  // precomputed blocks is bit-for-bit the per-window renormalising one.
  const HogParams p;
  const CellGrid grid = compute_cell_grid(textured(160, 96, 7), p);
  const BlockGrid blocks = compute_block_grid(grid, p);

  std::vector<float> from_cells, from_blocks;
  for (const auto [cx, cy, cw, ch] :
       {std::array{0, 0, 8, 8}, std::array{5, 3, 8, 8},
        std::array{12, 4, 8, 8}, std::array{1, 1, 8, 6},
        std::array{0, 2, 4, 4}, std::array{16, 8, 4, 4}}) {
    window_descriptor(grid, p, cx, cy, cw, ch, from_cells);
    window_descriptor(blocks, p, cx, cy, cw, ch, from_blocks);
    ASSERT_EQ(from_cells.size(), from_blocks.size());
    for (std::size_t i = 0; i < from_cells.size(); ++i)
      EXPECT_EQ(from_cells[i], from_blocks[i])
          << "window (" << cx << "," << cy << "," << cw << "," << ch
          << ") element " << i;
  }
}

TEST(BlockGrid, BitIdenticalWithStride2Blocks) {
  // Odd-offset windows need the stride-1 anchors even when the block stride
  // is 2: window blocks sit at cx + wbx*2, which is odd for odd cx.
  HogParams p;
  p.block_stride_cells = 2;
  const CellGrid grid = compute_cell_grid(textured(128, 96, 9), p);
  const BlockGrid blocks = compute_block_grid(grid, p);
  std::vector<float> from_cells, from_blocks;
  for (int cy : {0, 1, 3}) {
    for (int cx : {0, 1, 5}) {
      window_descriptor(grid, p, cx, cy, 8, 8, from_cells);
      window_descriptor(blocks, p, cx, cy, 8, 8, from_blocks);
      ASSERT_EQ(from_cells.size(), from_blocks.size());
      for (std::size_t i = 0; i < from_cells.size(); ++i)
        EXPECT_EQ(from_cells[i], from_blocks[i]);
    }
  }
}

TEST(BlockGrid, OutOfRangeWindowThrows) {
  const CellGrid grid = compute_cell_grid(textured(64, 64), {});
  const BlockGrid blocks = compute_block_grid(grid, {});
  std::vector<float> out;
  EXPECT_THROW(window_descriptor(blocks, {}, 4, 4, 8, 8, out),
               std::out_of_range);
  EXPECT_THROW(window_descriptor(blocks, {}, -1, 0, 4, 4, out),
               std::out_of_range);
  EXPECT_NO_THROW(window_descriptor(blocks, {}, 0, 0, 8, 8, out));
}

}  // namespace
}  // namespace avd::hog
