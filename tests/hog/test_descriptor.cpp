#include <gtest/gtest.h>

#include <cmath>

#include "avd/hog/hog.hpp"

namespace avd::hog {
namespace {

img::ImageU8 textured(int w, int h, int seed = 0) {
  img::ImageU8 im(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * 31 + y * 57 + seed * 13 + x * y) % 256);
  return im;
}

TEST(DescriptorLength, ClassicDalalTriggsWindow) {
  // 64x128 pedestrian window: 7x15 blocks x 4 cells x 9 bins = 3780.
  EXPECT_EQ(HogParams{}.descriptor_length({64, 128}), 3780u);
}

TEST(DescriptorLength, VehicleWindow) {
  // 64x64: 7x7 blocks x 36 = 1764.
  EXPECT_EQ(HogParams{}.descriptor_length({64, 64}), 1764u);
}

TEST(DescriptorLength, MisalignedWindowThrows) {
  EXPECT_THROW(HogParams{}.descriptor_length({60, 64}), std::invalid_argument);
  EXPECT_THROW(HogParams{}.descriptor_length({64, 63}), std::invalid_argument);
}

TEST(DescriptorLength, TooSmallWindowThrows) {
  EXPECT_THROW(HogParams{}.descriptor_length({8, 8}), std::invalid_argument);
}

TEST(Descriptor, MatchesDeclaredLength) {
  const auto desc = compute_descriptor(textured(64, 64), {});
  EXPECT_EQ(desc.size(), 1764u);
}

TEST(Descriptor, BlocksAreL2HysNormalised) {
  const HogParams p;
  const auto desc = compute_descriptor(textured(64, 64), p);
  const std::size_t block_len = 4u * p.bins;
  for (std::size_t start = 0; start + block_len <= desc.size();
       start += block_len) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < block_len; ++i) {
      // Clipping happens before the final renormalisation, so individual
      // entries may exceed the clip value afterwards — but never 1.0.
      EXPECT_LE(desc[start + i], 1.0f);
      EXPECT_GE(desc[start + i], 0.0f);
      norm2 += static_cast<double>(desc[start + i]) * desc[start + i];
    }
    EXPECT_NEAR(norm2, 1.0, 1e-3);
  }
}

TEST(Descriptor, FlatBlockNormalisesToZero) {
  // No gradient energy: the epsilon in the norm keeps the block at zero
  // instead of NaN.
  const auto desc = compute_descriptor(img::ImageU8(64, 64, 55), {});
  for (float v : desc) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(Descriptor, InvariantToGlobalBrightnessShift) {
  img::ImageU8 a = textured(64, 64);
  img::ImageU8 b = a;
  for (auto& v : b.pixels())
    v = static_cast<std::uint8_t>(std::min(255, v + 30));
  const auto da = compute_descriptor(a, {});
  const auto db = compute_descriptor(b, {});
  // Shifting brightness changes nothing where no clipping happened; allow a
  // small tolerance for saturated pixels.
  double diff = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i)
    diff += std::abs(static_cast<double>(da[i]) - db[i]);
  EXPECT_LT(diff / da.size(), 0.01);
}

TEST(Descriptor, ApproximatelyInvariantToContrastScaling) {
  img::ImageU8 a = textured(64, 64);
  img::ImageU8 b = a;
  for (auto& v : b.pixels()) v = static_cast<std::uint8_t>(v / 2);
  const auto da = compute_descriptor(a, {});
  const auto db = compute_descriptor(b, {});
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    dot += static_cast<double>(da[i]) * db[i];
    na += static_cast<double>(da[i]) * da[i];
    nb += static_cast<double>(db[i]) * db[i];
  }
  EXPECT_GT(dot / std::sqrt(na * nb), 0.95);  // cosine similarity
}

TEST(WindowDescriptor, SubWindowMatchesCroppedImage) {
  // Descriptor of a window assembled from the full-image cell grid must
  // equal the descriptor computed on the cropped window — the memory-reuse
  // equivalence that the hardware pipeline (Fig. 2) relies on.
  const img::ImageU8 full = textured(128, 96);
  const HogParams p;
  const CellGrid grid = compute_cell_grid(full, p);

  const int cell_x = 3, cell_y = 2;
  std::vector<float> from_grid;
  window_descriptor(grid, p, cell_x, cell_y, 8, 8, from_grid);

  const img::ImageU8 crop =
      full.crop({cell_x * 8, cell_y * 8, 64, 64});
  const auto from_crop = compute_descriptor(crop, p);

  ASSERT_EQ(from_grid.size(), from_crop.size());
  // Gradients at the crop border differ (clamped neighbours), so compare
  // with a tolerance over the full vector.
  double diff = 0.0;
  for (std::size_t i = 0; i < from_grid.size(); ++i)
    diff += std::abs(static_cast<double>(from_grid[i]) - from_crop[i]);
  EXPECT_LT(diff / from_grid.size(), 0.02);
}

TEST(WindowDescriptor, OutOfGridThrows) {
  const CellGrid grid = compute_cell_grid(textured(64, 64), {});
  std::vector<float> out;
  EXPECT_THROW(window_descriptor(grid, {}, 4, 4, 8, 8, out), std::out_of_range);
  EXPECT_THROW(window_descriptor(grid, {}, -1, 0, 4, 4, out), std::out_of_range);
}

TEST(WindowDescriptor, ReusesOutputBuffer) {
  const CellGrid grid = compute_cell_grid(textured(64, 64), {});
  std::vector<float> out(9999, -1.0f);
  window_descriptor(grid, {}, 0, 0, 8, 8, out);
  EXPECT_EQ(out.size(), HogParams{}.descriptor_length({64, 64}));
}

TEST(Descriptor, DeterministicAcrossCalls) {
  const img::ImageU8 im = textured(64, 64, 5);
  EXPECT_EQ(compute_descriptor(im, {}), compute_descriptor(im, {}));
}

// Parameterised: descriptor length formula consistency across window sizes.
class DescriptorLengthSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DescriptorLengthSweep, ComputedDescriptorMatchesFormula) {
  const auto [w, h] = GetParam();
  const HogParams p;
  const auto desc = compute_descriptor(textured(w, h), p);
  EXPECT_EQ(desc.size(), p.descriptor_length({w, h}));
}

INSTANTIATE_TEST_SUITE_P(
    Windows, DescriptorLengthSweep,
    ::testing::Values(std::pair{16, 16}, std::pair{32, 64}, std::pair{64, 64},
                      std::pair{64, 128}, std::pair{96, 48}));

}  // namespace
}  // namespace avd::hog
