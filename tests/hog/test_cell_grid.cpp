#include <gtest/gtest.h>

#include <numeric>

#include "avd/hog/hog.hpp"

namespace avd::hog {
namespace {

TEST(CellGrid, DimensionsFromImage) {
  const CellGrid g = compute_cell_grid(img::ImageU8(64, 48), {});
  EXPECT_EQ(g.cells_x(), 8);
  EXPECT_EQ(g.cells_y(), 6);
  EXPECT_EQ(g.bins(), 9);
}

TEST(CellGrid, PartialCellsAreDropped) {
  const CellGrid g = compute_cell_grid(img::ImageU8(70, 50), {});
  EXPECT_EQ(g.cells_x(), 8);  // 70/8
  EXPECT_EQ(g.cells_y(), 6);  // 50/8
}

TEST(CellGrid, FlatImageGivesEmptyHistograms) {
  const CellGrid g = compute_cell_grid(img::ImageU8(32, 32, 77), {});
  for (int cy = 0; cy < g.cells_y(); ++cy)
    for (int cx = 0; cx < g.cells_x(); ++cx)
      for (float v : g.cell(cx, cy)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(CellGrid, EdgeEnergyLandsInCorrectCells) {
  // Vertical edge at x = 16: gradient energy in cell column 1-2 only.
  img::ImageU8 im(32, 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 16; x < 32; ++x) im(x, y) = 200;
  const CellGrid g = compute_cell_grid(im, {});

  auto cell_energy = [&](int cx, int cy) {
    auto h = g.cell(cx, cy);
    return std::accumulate(h.begin(), h.end(), 0.0f);
  };
  EXPECT_GT(cell_energy(1, 0) + cell_energy(2, 0), 100.0f);
  EXPECT_FLOAT_EQ(cell_energy(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cell_energy(3, 1), 0.0f);
}

TEST(CellGrid, VerticalEdgeEnergyInZeroBin) {
  img::ImageU8 im(16, 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 8; x < 16; ++x) im(x, y) = 200;
  const CellGrid g = compute_cell_grid(im, {});
  // Orientation 0 degrees falls halfway between the last and first bin
  // centres under interpolation; the energy must be split between them.
  auto h = g.cell(1, 1);
  const float wrap_energy = h[0] + h[8];
  float other = 0.0f;
  for (int b = 1; b < 8; ++b) other += h[b];
  EXPECT_GT(wrap_energy, 10.0f * other + 1.0f);
}

TEST(CellGrid, HistogramMassEqualsGradientMass) {
  // Bin interpolation redistributes but conserves magnitude.
  img::ImageU8 im(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * 13 + y * 29) % 256);
  const GradientField grad = compute_gradients(im);
  const CellGrid g = compute_cell_grid(im, {});

  double hist_mass = 0.0;
  for (int cy = 0; cy < g.cells_y(); ++cy)
    for (int cx = 0; cx < g.cells_x(); ++cx)
      for (float v : g.cell(cx, cy)) hist_mass += v;

  double grad_mass = 0.0;
  for (auto v : grad.magnitude.pixels()) grad_mass += v;

  EXPECT_NEAR(hist_mass, grad_mass, grad_mass * 1e-5);
}

TEST(CellGrid, CustomBinCount) {
  HogParams p;
  p.bins = 6;
  const CellGrid g = compute_cell_grid(img::ImageU8(16, 16), p);
  EXPECT_EQ(g.bins(), 6);
  EXPECT_EQ(g.cell(0, 0).size(), 6u);
}

TEST(CellGrid, BadParamsThrow) {
  HogParams p;
  p.cell_size = 0;
  EXPECT_THROW(compute_cell_grid(img::ImageU8(8, 8), p), std::invalid_argument);
}

}  // namespace
}  // namespace avd::hog
