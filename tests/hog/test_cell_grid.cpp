#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "avd/hog/hog.hpp"

namespace avd::hog {
namespace {

TEST(CellGrid, DimensionsFromImage) {
  const CellGrid g = compute_cell_grid(img::ImageU8(64, 48), {});
  EXPECT_EQ(g.cells_x(), 8);
  EXPECT_EQ(g.cells_y(), 6);
  EXPECT_EQ(g.bins(), 9);
}

TEST(CellGrid, PartialCellsAreDropped) {
  const CellGrid g = compute_cell_grid(img::ImageU8(70, 50), {});
  EXPECT_EQ(g.cells_x(), 8);  // 70/8
  EXPECT_EQ(g.cells_y(), 6);  // 50/8
}

TEST(CellGrid, FlatImageGivesEmptyHistograms) {
  const CellGrid g = compute_cell_grid(img::ImageU8(32, 32, 77), {});
  for (int cy = 0; cy < g.cells_y(); ++cy)
    for (int cx = 0; cx < g.cells_x(); ++cx)
      for (float v : g.cell(cx, cy)) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(CellGrid, EdgeEnergyLandsInCorrectCells) {
  // Vertical edge at x = 16: gradient energy in cell column 1-2 only.
  img::ImageU8 im(32, 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 16; x < 32; ++x) im(x, y) = 200;
  const CellGrid g = compute_cell_grid(im, {});

  auto cell_energy = [&](int cx, int cy) {
    auto h = g.cell(cx, cy);
    return std::accumulate(h.begin(), h.end(), 0.0f);
  };
  EXPECT_GT(cell_energy(1, 0) + cell_energy(2, 0), 100.0f);
  EXPECT_FLOAT_EQ(cell_energy(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cell_energy(3, 1), 0.0f);
}

TEST(CellGrid, VerticalEdgeEnergyInZeroBin) {
  img::ImageU8 im(16, 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 8; x < 16; ++x) im(x, y) = 200;
  const CellGrid g = compute_cell_grid(im, {});
  // Orientation 0 degrees falls halfway between the last and first bin
  // centres under interpolation; the energy must be split between them.
  auto h = g.cell(1, 1);
  const float wrap_energy = h[0] + h[8];
  float other = 0.0f;
  for (int b = 1; b < 8; ++b) other += h[b];
  EXPECT_GT(wrap_energy, 10.0f * other + 1.0f);
}

TEST(CellGrid, HistogramMassEqualsGradientMass) {
  // Bin interpolation redistributes but conserves magnitude.
  img::ImageU8 im(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * 13 + y * 29) % 256);
  const GradientField grad = compute_gradients(im);
  const CellGrid g = compute_cell_grid(im, {});

  double hist_mass = 0.0;
  for (int cy = 0; cy < g.cells_y(); ++cy)
    for (int cx = 0; cx < g.cells_x(); ++cx)
      for (float v : g.cell(cx, cy)) hist_mass += v;

  double grad_mass = 0.0;
  for (auto v : grad.magnitude.pixels()) grad_mass += v;

  EXPECT_NEAR(hist_mass, grad_mass, grad_mass * 1e-5);
}

TEST(CellGrid, PerCellMassEqualsGradientMass) {
  // The property behind the wraparound audit (hog.cpp bin interpolation):
  // whatever bins the interpolation touches — including the {last, 0} wrap
  // pair at deg ~ 0/180 — the two weights always sum to 1, so each CELL
  // conserves its pixels' gradient magnitude exactly, not just the whole
  // image.
  img::ImageU8 im(40, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 40; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * 37 + y * 11 + x * y * 3) % 256);
  const GradientField grad = compute_gradients(im);
  const CellGrid g = compute_cell_grid(im, {});

  for (int cy = 0; cy < g.cells_y(); ++cy) {
    for (int cx = 0; cx < g.cells_x(); ++cx) {
      double hist_mass = 0.0;
      for (float v : g.cell(cx, cy)) hist_mass += v;
      double grad_mass = 0.0;
      for (int y = cy * 8; y < (cy + 1) * 8; ++y)
        for (int x = cx * 8; x < (cx + 1) * 8; ++x)
          grad_mass += grad.magnitude(x, y);
      EXPECT_NEAR(hist_mass, grad_mass, grad_mass * 1e-5 + 1e-4)
          << "cell (" << cx << "," << cy << ")";
    }
  }
}

TEST(CellGrid, HorizontalRampSplitsWrapPairEqually) {
  // A pure horizontal ramp has orientation exactly 0 degrees, which sits
  // exactly between the last bin centre (170) and the first (10, via wrap):
  // pos = -0.5, weights 0.5/0.5 on bins {8, 0} — an exact boundary of the
  // interpolation.
  img::ImageU8 im(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x)
      im(x, y) = static_cast<std::uint8_t>(10 + 4 * x);
  const CellGrid g = compute_cell_grid(im, {});
  const auto h = g.cell(1, 1);  // interior cell, uniform gradient
  EXPECT_GT(h[0], 0.0f);
  EXPECT_FLOAT_EQ(h[0], h[8]);
  for (int b = 1; b < 8; ++b) EXPECT_FLOAT_EQ(h[b], 0.0f);
}

TEST(CellGrid, DescendingRampAlsoWrapsTo180Boundary) {
  // Negative dx gives atan2 = 180 degrees, which the gradient stage wraps to
  // 0 — the deg ~ 180 boundary must land in the same {8, 0} wrap pair, not
  // overflow past the last bin.
  img::ImageU8 im(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x)
      im(x, y) = static_cast<std::uint8_t>(200 - 4 * x);
  const CellGrid g = compute_cell_grid(im, {});
  const auto h = g.cell(1, 1);
  EXPECT_GT(h[0], 0.0f);
  EXPECT_FLOAT_EQ(h[0], h[8]);
  for (int b = 1; b < 8; ++b) EXPECT_FLOAT_EQ(h[b], 0.0f);
}

TEST(CellGrid, VerticalRampLandsExactlyInMiddleBin) {
  // Orientation 90 degrees: pos = 90/20 - 0.5 = 4.0 exactly — zero weight
  // may leak into bin 5.
  img::ImageU8 im(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x)
      im(x, y) = static_cast<std::uint8_t>(10 + 4 * y);
  const CellGrid g = compute_cell_grid(im, {});
  const auto h = g.cell(1, 1);
  EXPECT_GT(h[4], 0.0f);
  for (int b = 0; b < 9; ++b)
    if (b != 4) EXPECT_FLOAT_EQ(h[b], 0.0f) << "bin " << b;
}

TEST(CellGrid, FusedLutGridMatchesGradientFieldVotePath) {
  // compute_cell_grid fuses the gradient stage with the vote loop through a
  // (gx, gy) lookup table instead of materialising a GradientField and
  // calling sqrt/atan2 per pixel. The table stores exactly what
  // compute_gradients computes, so the fused grid must equal a grid voted
  // straight off the gradient field — float for float, not approximately.
  img::ImageU8 im(50, 42);
  for (int y = 0; y < 42; ++y)
    for (int x = 0; x < 50; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * 53 + y * 19 + x * y) % 256);
  const HogParams params;
  const CellGrid fused = compute_cell_grid(im, params);

  const GradientField grad = compute_gradients(im);
  CellGrid voted(im.width() / params.cell_size, im.height() / params.cell_size,
                 params.bins);
  const float bin_width = 180.0f / static_cast<float>(params.bins);
  for (int y = 0; y < voted.cells_y() * params.cell_size; ++y) {
    for (int x = 0; x < voted.cells_x() * params.cell_size; ++x) {
      const float mag = grad.magnitude(x, y);
      if (mag == 0.0f) continue;
      const float pos = grad.orientation_deg(x, y) / bin_width - 0.5f;
      int b0 = static_cast<int>(std::floor(pos));
      const float w1 = pos - static_cast<float>(b0);
      int b1 = b0 + 1;
      if (b0 < 0) b0 += params.bins;
      if (b1 >= params.bins) b1 -= params.bins;
      auto hist = voted.cell(x / params.cell_size, y / params.cell_size);
      hist[b0] += mag * (1.0f - w1);
      hist[b1] += mag * w1;
    }
  }

  for (int cy = 0; cy < fused.cells_y(); ++cy)
    for (int cx = 0; cx < fused.cells_x(); ++cx) {
      const auto a = fused.cell(cx, cy);
      const auto b = voted.cell(cx, cy);
      for (int bin = 0; bin < params.bins; ++bin)
        EXPECT_EQ(a[bin], b[bin])
            << "cell (" << cx << "," << cy << ") bin " << bin;
    }
}

TEST(CellGrid, CustomBinCount) {
  HogParams p;
  p.bins = 6;
  const CellGrid g = compute_cell_grid(img::ImageU8(16, 16), p);
  EXPECT_EQ(g.bins(), 6);
  EXPECT_EQ(g.cell(0, 0).size(), 6u);
}

TEST(CellGrid, BadParamsThrow) {
  HogParams p;
  p.cell_size = 0;
  EXPECT_THROW(compute_cell_grid(img::ImageU8(8, 8), p), std::invalid_argument);
}

}  // namespace
}  // namespace avd::hog
