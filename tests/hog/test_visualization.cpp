#include "avd/hog/visualization.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace avd::hog {
namespace {

TEST(HogGlyphs, OutputDimensions) {
  const img::ImageU8 glyphs = visualize_hog(img::ImageU8(64, 32), {}, {});
  EXPECT_EQ(glyphs.size(), (img::Size{8 * 16, 4 * 16}));
}

TEST(HogGlyphs, FlatImageRendersBlack) {
  const img::ImageU8 glyphs = visualize_hog(img::ImageU8(32, 32, 99));
  for (auto v : glyphs.pixels()) EXPECT_EQ(v, 0);
}

TEST(HogGlyphs, VerticalEdgeDrawsVerticalStrokes) {
  // A vertical edge has gradient orientation 0 deg; the glyph stroke is
  // drawn at +90 deg (edge direction), i.e. vertical strokes in the cells
  // containing the edge.
  img::ImageU8 im(32, 32, 0);
  for (int y = 0; y < 32; ++y)
    for (int x = 16; x < 32; ++x) im(x, y) = 200;
  const img::ImageU8 glyphs = visualize_hog(im);

  // The edge column is cell x=1..2; probe the cell centred at (1,1). The
  // orientation-0 energy splits between the 10-deg and 170-deg bins, so the
  // stroke is near-vertical (within +-1 px of the centre column at +-4 rows).
  const int cx = 1 * 16 + 8, cy = 1 * 16 + 8;
  auto max_near = [&](int x, int y) {
    int best = 0;
    for (int dx = -1; dx <= 1; ++dx)
      best = std::max(best, static_cast<int>(glyphs(x + dx, y)));
    return best;
  };
  EXPECT_GT(max_near(cx, cy - 4), 100);
  EXPECT_GT(max_near(cx, cy + 4), 100);
  // Well off the stroke stays dark.
  EXPECT_EQ(glyphs(cx + 6, cy), 0);
}

TEST(HogGlyphs, CustomCellPixels) {
  GlyphParams params;
  params.cell_pixels = 8;
  const img::ImageU8 glyphs = visualize_hog(img::ImageU8(64, 64), {}, params);
  EXPECT_EQ(glyphs.size(), (img::Size{64, 64}));
}

TEST(HogGlyphs, GainBrightens) {
  img::ImageU8 im(32, 32, 0);
  for (int y = 0; y < 32; ++y)
    for (int x = 16; x < 32; ++x) im(x, y) = 60;  // weak edge
  GlyphParams dim;
  dim.gain = 0.5f;
  GlyphParams bright;
  bright.gain = 4.0f;
  std::uint64_t dim_sum = 0, bright_sum = 0;
  for (auto v : visualize_hog(im, {}, dim).pixels()) dim_sum += v;
  for (auto v : visualize_hog(im, {}, bright).pixels()) bright_sum += v;
  EXPECT_GT(bright_sum, dim_sum);
}

TEST(HogGlyphs, EmptyGridRendersEmptyImage) {
  const CellGrid grid;
  const img::ImageU8 glyphs = render_hog_glyphs(grid);
  EXPECT_TRUE(glyphs.empty());
}

}  // namespace
}  // namespace avd::hog
