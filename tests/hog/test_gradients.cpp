#include <gtest/gtest.h>

#include "avd/hog/hog.hpp"

namespace avd::hog {
namespace {

TEST(Gradients, FlatImageHasZeroMagnitude) {
  const GradientField g = compute_gradients(img::ImageU8(8, 8, 100));
  for (auto v : g.magnitude.pixels()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Gradients, VerticalEdgeGivesHorizontalGradient) {
  img::ImageU8 im(8, 8, 0);
  for (int y = 0; y < 8; ++y)
    for (int x = 4; x < 8; ++x) im(x, y) = 200;
  const GradientField g = compute_gradients(im);
  // At x=3/4 the centred difference spans the edge: gx = 200, gy = 0.
  EXPECT_FLOAT_EQ(g.magnitude(4, 4), 200.0f);
  // atan2(0, 200) = 0 degrees: a horizontal gradient (vertical edge).
  EXPECT_NEAR(g.orientation_deg(4, 4), 0.0f, 1e-4);
}

TEST(Gradients, HorizontalEdgeGivesNinetyDegrees) {
  img::ImageU8 im(8, 8, 0);
  for (int y = 4; y < 8; ++y)
    for (int x = 0; x < 8; ++x) im(x, y) = 200;
  const GradientField g = compute_gradients(im);
  EXPECT_NEAR(g.orientation_deg(4, 4), 90.0f, 1e-4);
}

TEST(Gradients, OrientationIsUnsigned) {
  // Rising and falling edges of the same orientation must map to the same
  // unsigned angle (mod 180).
  img::ImageU8 rising(8, 8, 0), falling(8, 8, 200);
  for (int y = 0; y < 8; ++y)
    for (int x = 4; x < 8; ++x) {
      rising(x, y) = 200;
      falling(x, y) = 0;
    }
  const GradientField gr = compute_gradients(rising);
  const GradientField gf = compute_gradients(falling);
  EXPECT_NEAR(gr.orientation_deg(4, 4), gf.orientation_deg(4, 4), 1e-4);
}

TEST(Gradients, RangeAlwaysWithinZeroTo180) {
  img::ImageU8 im(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      im(x, y) = static_cast<std::uint8_t>((x * x + 3 * y + x * y) % 256);
  const GradientField g = compute_gradients(im);
  for (auto v : g.orientation_deg.pixels()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 180.0f);
  }
}

TEST(Gradients, DiagonalEdgeNear45) {
  img::ImageU8 im(16, 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      if (x + y > 16) im(x, y) = 200;
  const GradientField g = compute_gradients(im);
  // On the diagonal boundary both gx and gy are positive and equal.
  EXPECT_NEAR(g.orientation_deg(8, 8), 45.0f, 1.0f);
}

TEST(Gradients, BorderUsesClampedNeighbours) {
  // A 1-wide image: clamped reads make gx = 0 everywhere; must not crash.
  img::ImageU8 im(1, 4);
  im(0, 0) = 0;
  im(0, 3) = 90;
  const GradientField g = compute_gradients(im);
  EXPECT_EQ(g.magnitude.size(), (img::Size{1, 4}));
}

}  // namespace
}  // namespace avd::hog
