#include "avd/core/lighting_classifier.hpp"

#include <gtest/gtest.h>

#include "avd/datasets/scene.hpp"
#include "avd/image/color.hpp"

namespace avd::core {
namespace {

using data::LightingCondition;

TEST(LightingClassifier, InitialConditionHeld) {
  LightingClassifier c({}, LightingCondition::Dusk);
  EXPECT_EQ(c.current(), LightingCondition::Dusk);
}

TEST(LightingClassifier, ImmediateClassWithinBand) {
  LightingClassifier c;
  EXPECT_EQ(c.update(0.9), LightingCondition::Day);
}

TEST(LightingClassifier, DebounceDelaysTransition) {
  LightingClassifierConfig cfg;
  cfg.debounce_frames = 3;
  LightingClassifier c(cfg, LightingCondition::Day);
  EXPECT_EQ(c.update(0.3), LightingCondition::Day);   // 1st dusk reading
  EXPECT_EQ(c.update(0.3), LightingCondition::Day);   // 2nd
  EXPECT_EQ(c.update(0.3), LightingCondition::Dusk);  // 3rd: switch
}

TEST(LightingClassifier, GlitchDoesNotSwitch) {
  LightingClassifierConfig cfg;
  cfg.debounce_frames = 3;
  LightingClassifier c(cfg, LightingCondition::Day);
  (void)c.update(0.3);
  (void)c.update(0.3);
  (void)c.update(0.9);  // back to day: candidate count resets
  (void)c.update(0.3);
  EXPECT_EQ(c.update(0.3), LightingCondition::Day);  // only 2 consecutive
  EXPECT_EQ(c.update(0.3), LightingCondition::Dusk);
}

TEST(LightingClassifier, HysteresisBlocksBoundarySitting) {
  LightingClassifierConfig cfg;
  cfg.debounce_frames = 1;
  LightingClassifier c(cfg, LightingCondition::Day);
  // Just under the day/dusk boundary but inside the hysteresis band: stays
  // day.
  EXPECT_EQ(c.update(0.53), LightingCondition::Day);
  // Clearly below the band: switches.
  EXPECT_EQ(c.update(0.45), LightingCondition::Dusk);
  // Climbing back to just above the boundary is not enough either.
  EXPECT_EQ(c.update(0.57), LightingCondition::Dusk);
  EXPECT_EQ(c.update(0.65), LightingCondition::Day);
}

TEST(LightingClassifier, DirectDayToDarkTransition) {
  LightingClassifierConfig cfg;
  cfg.debounce_frames = 1;
  LightingClassifier c(cfg, LightingCondition::Day);
  EXPECT_EQ(c.update(0.02), LightingCondition::Dark);  // tunnel of night
}

TEST(LightingClassifier, DarkToDayTransition) {
  LightingClassifierConfig cfg;
  cfg.debounce_frames = 1;
  LightingClassifier c(cfg, LightingCondition::Dark);
  EXPECT_EQ(c.update(0.9), LightingCondition::Day);
}

TEST(LightingClassifier, NoThrashAcrossNoisySensor) {
  // Noisy readings around dusk nominal: the classifier must settle and stay.
  LightingClassifier c({}, LightingCondition::Day);
  ml::Rng rng(4);
  int switches = 0;
  data::LightingCondition prev = c.current();
  for (int i = 0; i < 200; ++i) {
    const double level = 0.35 + rng.gaussian(0.0, 0.02);
    const data::LightingCondition now = c.update(level);
    switches += now != prev;
    prev = now;
  }
  EXPECT_EQ(switches, 1);  // exactly one day->dusk transition
}

TEST(LightingClassifier, EstimateSeparatesRenderedConditions) {
  auto estimate = [](LightingCondition cond) {
    data::SceneGenerator gen(cond, 77);
    const img::RgbImage frame = render_scene(gen.random_scene({320, 180}, 2));
    return LightingClassifier::estimate_light_level(
        img::rgb_to_gray(frame));
  };
  const double day = estimate(LightingCondition::Day);
  const double dusk = estimate(LightingCondition::Dusk);
  const double dark = estimate(LightingCondition::Dark);
  EXPECT_GT(day, dusk);
  EXPECT_GT(dusk, dark);
  // And the estimates classify back to their own conditions.
  EXPECT_EQ(data::condition_for_light_level(day), LightingCondition::Day);
  EXPECT_EQ(data::condition_for_light_level(dark), LightingCondition::Dark);
}

TEST(LightingClassifier, BrightPointSourcesDoNotFoolEstimate) {
  // A dark frame dotted with saturated lamps must still read as dark.
  img::ImageU8 gray(100, 100, 5);
  for (int i = 0; i < 12; ++i)
    for (int dy = 0; dy < 3; ++dy)
      for (int dx = 0; dx < 3; ++dx) gray(i * 8 + dx, 50 + dy) = 255;
  const double level = LightingClassifier::estimate_light_level(gray);
  EXPECT_EQ(data::condition_for_light_level(level),
            LightingCondition::Dark);
}

}  // namespace
}  // namespace avd::core
