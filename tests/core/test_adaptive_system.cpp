#include "avd/core/adaptive_system.hpp"

#include <gtest/gtest.h>

namespace avd::core {
namespace {

using data::LightingCondition;

TrainingBudget tiny_budget() {
  TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 40;
  b.pedestrian_pos = b.pedestrian_neg = 30;
  b.dbn_windows_per_class = 90;
  b.pairing_scenes = 30;
  return b;
}

// Control-plane-only system shared across the suite.
class AdaptiveSystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AdaptiveSystemConfig cfg;
    cfg.run_detectors = false;
    system_ = new AdaptiveSystem(build_system_models(tiny_budget()), cfg);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static AdaptiveSystem& system() { return *system_; }

  static data::DriveSequence drive(std::vector<data::DriveSegment> segments) {
    data::SequenceSpec spec;
    spec.frame_size = {480, 270};
    spec.segments = std::move(segments);
    return data::DriveSequence(spec);
  }

 private:
  static AdaptiveSystem* system_;
};

AdaptiveSystem* AdaptiveSystemTest::system_ = nullptr;

TEST_F(AdaptiveSystemTest, ConfigForCondition) {
  EXPECT_STREQ(config_for(LightingCondition::Day), "day-dusk");
  EXPECT_STREQ(config_for(LightingCondition::Dusk), "day-dusk");
  EXPECT_STREQ(config_for(LightingCondition::Dark), "dark");
}

TEST_F(AdaptiveSystemTest, SteadyDayNeedsNoReconfig) {
  const auto report = system().run(drive({{LightingCondition::Day, 30}}));
  EXPECT_EQ(report.reconfig_count(), 0);
  EXPECT_EQ(report.dropped_vehicle_frames(), 0);
  EXPECT_DOUBLE_EQ(report.vehicle_availability(), 1.0);
}

TEST_F(AdaptiveSystemTest, DayToDuskIsModelSwapOnly) {
  // Both conditions live in the same partial configuration: no PR.
  const auto report = system().run(drive(
      {{LightingCondition::Day, 20}, {LightingCondition::Dusk, 20}}));
  EXPECT_EQ(report.reconfig_count(), 0);
  EXPECT_EQ(report.dropped_vehicle_frames(), 0);
}

TEST_F(AdaptiveSystemTest, DuskToDarkTriggersOneReconfig) {
  const auto report = system().run(drive(
      {{LightingCondition::Dusk, 20}, {LightingCondition::Dark, 20}}));
  EXPECT_EQ(report.reconfig_count(), 1);
  // Paper §IV-B: one reconfiguration costs exactly one 50 fps frame.
  EXPECT_EQ(report.dropped_vehicle_frames(), 1);
  EXPECT_EQ(report.reconfigs[0].config_name, "dark");
}

TEST_F(AdaptiveSystemTest, PedestrianDetectionNeverInterrupted) {
  const auto report = system().run(drive(
      {{LightingCondition::Day, 10},
       {LightingCondition::Dark, 10},
       {LightingCondition::Day, 10}}));
  EXPECT_EQ(report.pedestrian_frames_processed(),
            static_cast<int>(report.frames.size()));
}

TEST_F(AdaptiveSystemTest, RoundTripReconfiguresTwice) {
  const auto report = system().run(drive(
      {{LightingCondition::Dusk, 15},
       {LightingCondition::Dark, 15},
       {LightingCondition::Dusk, 15}}));
  EXPECT_EQ(report.reconfig_count(), 2);
  EXPECT_EQ(report.dropped_vehicle_frames(), 2);
  EXPECT_EQ(report.reconfigs[0].config_name, "dark");
  EXPECT_EQ(report.reconfigs[1].config_name, "day-dusk");
}

TEST_F(AdaptiveSystemTest, DebounceDelaysReconfigByAFewFrames) {
  const auto report = system().run(drive(
      {{LightingCondition::Dusk, 10}, {LightingCondition::Dark, 10}}));
  ASSERT_EQ(report.reconfig_count(), 1);
  // The condition changes at frame 10; debounce (3 frames) defers the
  // trigger to frame 12.
  int trigger_frame = -1;
  for (const auto& f : report.frames)
    if (f.reconfig_triggered) trigger_frame = f.index;
  EXPECT_GE(trigger_frame, 11);
  EXPECT_LE(trigger_frame, 13);
}

TEST_F(AdaptiveSystemTest, ActiveConfigLagsSensedCondition) {
  const auto report = system().run(drive(
      {{LightingCondition::Dusk, 10}, {LightingCondition::Dark, 10}}));
  // Frames right after the dark transition still run day-dusk hardware.
  const auto& f10 = report.frames[10];
  EXPECT_EQ(f10.active_config, "day-dusk");
  // By the end, dark hardware is loaded.
  EXPECT_EQ(report.frames.back().active_config, "dark");
}

TEST_F(AdaptiveSystemTest, TunnelScenarioNoReconfig) {
  // Paper §IV-B: entering a lit tunnel is day->dusk, "simply handled" with
  // no reconfiguration.
  const auto report = system().run(drive(
      {{LightingCondition::Day, 15},
       {LightingCondition::Dusk, 15, 0.30},  // tunnel
       {LightingCondition::Day, 15}}));
  EXPECT_EQ(report.reconfig_count(), 0);
}

TEST_F(AdaptiveSystemTest, CanonicalDriveMatchesPaperStory) {
  const auto spec = data::DriveSequence::canonical_drive({480, 270}, 40);
  const auto report = system().run(data::DriveSequence(spec));
  // Exactly two PRs: dusk->dark and dark->dusk.
  EXPECT_EQ(report.reconfig_count(), 2);
  EXPECT_EQ(report.dropped_vehicle_frames(), 2);
  EXPECT_GT(report.vehicle_availability(), 0.99);
  // Reconfig events logged through the controller.
  EXPECT_GE(report.log.from("pr-controller").size(), 2u);
}

TEST_F(AdaptiveSystemTest, ReconfigUsesConfiguredMethodTiming) {
  const auto report = system().run(drive(
      {{LightingCondition::Dusk, 10}, {LightingCondition::Dark, 10}}));
  ASSERT_EQ(report.reconfig_count(), 1);
  // Default method is the paper's PR controller: ~390 MB/s on an ~8 MB
  // bitstream -> ~21.5 ms.
  EXPECT_NEAR(report.reconfigs[0].throughput_mbps(), 390.0, 20.0);
  EXPECT_NEAR(report.reconfigs[0].duration().as_ms(), 21.5, 2.0);
}

TEST_F(AdaptiveSystemTest, SlowMethodDropsMoreFrames) {
  AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  cfg.method = soc::ReconfigMethod::AxiHwicap;  // ~460 ms per reconfig
  AdaptiveSystem slow(build_system_models(tiny_budget()), cfg);
  const auto report = slow.run(drive(
      {{LightingCondition::Dusk, 10}, {LightingCondition::Dark, 40}}));
  ASSERT_EQ(report.reconfig_count(), 1);
  // ~461 ms of reconfiguration at 50 fps costs ~23 frames.
  EXPECT_GT(report.dropped_vehicle_frames(), 15);
}

TEST_F(AdaptiveSystemTest, ImageLightEstimateMatchesSensorDecisions) {
  // Vision-only operation: deriving the light level from the frames must
  // produce the same reconfiguration story as the external sensor on a
  // clean day->dark->day drive.
  core::AdaptiveSystemConfig sensor_cfg;
  sensor_cfg.run_detectors = false;
  core::AdaptiveSystemConfig vision_cfg = sensor_cfg;
  vision_cfg.use_image_light_estimate = true;

  const core::SystemModels models = core::build_system_models(tiny_budget());
  core::AdaptiveSystem by_sensor(models, sensor_cfg);
  core::AdaptiveSystem by_vision(models, vision_cfg);

  const auto seq = drive({{LightingCondition::Day, 15},
                          {LightingCondition::Dark, 15},
                          {LightingCondition::Day, 15}});
  const auto rs = by_sensor.run(seq);
  const auto rv = by_vision.run(seq);
  EXPECT_EQ(rv.reconfig_count(), rs.reconfig_count());
  EXPECT_EQ(rv.frames.back().active_config, rs.frames.back().active_config);
  // Per-frame sensed conditions may differ by a frame or two of debounce;
  // the end states must agree per segment midpoint.
  EXPECT_EQ(rv.frames[7].sensed, LightingCondition::Day);
  EXPECT_EQ(rv.frames[22].sensed, LightingCondition::Dark);
  EXPECT_EQ(rv.frames[40].sensed, LightingCondition::Day);
}

TEST_F(AdaptiveSystemTest, DwellTimeSuppressesThrash) {
  // A selection signal flapping every 8 frames between dusk and dark. With
  // no dwell the system reconfigures on (almost) every flip; with a 20-frame
  // dwell it reconfigures far less — each avoided reconfiguration is an
  // avoided dropped frame.
  std::vector<data::DriveSegment> flapping;
  for (int i = 0; i < 8; ++i) {
    flapping.push_back({LightingCondition::Dusk, 8});
    flapping.push_back({LightingCondition::Dark, 8});
  }

  core::TrainingBudget budget = tiny_budget();
  core::AdaptiveSystemConfig no_dwell;
  no_dwell.run_detectors = false;
  no_dwell.classifier.debounce_frames = 1;  // isolate the dwell effect
  core::AdaptiveSystemConfig with_dwell = no_dwell;
  with_dwell.min_dwell_frames = 20;

  const core::SystemModels models = core::build_system_models(budget);
  core::AdaptiveSystem fast(models, no_dwell);
  core::AdaptiveSystem slow(models, with_dwell);

  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.segments = flapping;
  const data::DriveSequence seq(spec);

  const int fast_reconfigs = fast.run(seq).reconfig_count();
  const int slow_reconfigs = slow.run(seq).reconfig_count();
  EXPECT_LT(slow_reconfigs, fast_reconfigs);
  EXPECT_GE(slow_reconfigs, 1);  // still tracks the real change eventually
}

TEST(AdaptiveSystemDetectors, FullPipelineFindsVehiclesPerCondition) {
  AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  cfg.sliding.score_threshold = 0.0;
  AdaptiveSystem system(build_system_models(tiny_budget()), cfg);

  // Dark frame through the dark pipeline.
  data::SceneGenerator dark_gen(data::LightingCondition::Dark, 5);
  const auto dark_scene = dark_gen.random_scene({480, 270}, 1);
  const auto dark_dets = system.detect_vehicles(
      data::render_scene(dark_scene), data::LightingCondition::Dark);
  EXPECT_FALSE(dark_dets.empty());

  // Day frame through the HOG pipeline.
  data::SceneSpec day_scene;
  day_scene.condition = data::LightingCondition::Day;
  day_scene.frame_size = {192, 128};
  day_scene.horizon_y = 36;
  data::VehicleSpec v;
  v.body = {60, 50, 76, 60};
  day_scene.vehicles.push_back(v);
  const auto day_dets = system.detect_vehicles(
      data::render_scene(day_scene), data::LightingCondition::Day);
  EXPECT_FALSE(day_dets.empty());
}

}  // namespace
}  // namespace avd::core
