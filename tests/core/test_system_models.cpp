#include "avd/core/system_models.hpp"

#include <gtest/gtest.h>

namespace avd::core {
namespace {

// Train one small model bundle for the whole suite.
class SystemModelsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TrainingBudget budget;
    budget.vehicle_pos = 60;
    budget.vehicle_neg = 60;
    budget.pedestrian_pos = 40;
    budget.pedestrian_neg = 40;
    budget.dbn_windows_per_class = 80;
    budget.pairing_scenes = 40;
    models_ = new SystemModels(build_system_models(budget));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
  }
  static const SystemModels& models() { return *models_; }

 private:
  static SystemModels* models_;
};

SystemModels* SystemModelsTest::models_ = nullptr;

TEST_F(SystemModelsTest, AllModelsTrained) {
  EXPECT_TRUE(models().day.svm.trained());
  EXPECT_TRUE(models().dusk.svm.trained());
  EXPECT_TRUE(models().combined.svm.trained());
  EXPECT_TRUE(models().pedestrian.svm.trained());
  EXPECT_TRUE(models().dark.pairing_svm().trained());
}

TEST_F(SystemModelsTest, ModelNames) {
  EXPECT_EQ(models().day.name, "day");
  EXPECT_EQ(models().dusk.name, "dusk");
  EXPECT_EQ(models().combined.name, "combined");
  EXPECT_EQ(models().pedestrian.name, "pedestrian");
}

TEST_F(SystemModelsTest, WindowsMatchBudget) {
  EXPECT_EQ(models().day.window, (img::Size{64, 64}));
  EXPECT_EQ(models().pedestrian.window, (img::Size{32, 64}));
}

TEST_F(SystemModelsTest, ClassIds) {
  EXPECT_EQ(models().day.class_id, det::kClassVehicle);
  EXPECT_EQ(models().pedestrian.class_id, det::kClassPedestrian);
}

TEST_F(SystemModelsTest, VehicleModelSelection) {
  // Day and dusk select their own SVM; the switch is a model swap, not a
  // reconfiguration (paper §III-A: two models in two block RAMs).
  EXPECT_EQ(&models().vehicle_model_for(data::LightingCondition::Day),
            &models().day);
  EXPECT_EQ(&models().vehicle_model_for(data::LightingCondition::Dusk),
            &models().dusk);
}

TEST_F(SystemModelsTest, DayAndDuskModelsDiffer) {
  // The paper stresses "the trained model in these three cases look very
  // different" — weights must not coincide.
  const auto& wd = models().day.svm.weights();
  const auto& wk = models().dusk.svm.weights();
  ASSERT_EQ(wd.size(), wk.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < wd.size(); ++i)
    diff += std::abs(static_cast<double>(wd[i]) - wk[i]);
  EXPECT_GT(diff, 1.0);
}

TEST_F(SystemModelsTest, DarkDetectorHasPaperShape) {
  EXPECT_EQ(models().dark.dbn().input_size(), 81);
  EXPECT_EQ(models().dark.dbn().classes(), 4);
  EXPECT_EQ(models().dark.config().downsample_factor, 3);
  EXPECT_EQ(models().dark.config().window_stride, 2);
}

TEST(SystemModelsBudget, Deterministic) {
  TrainingBudget tiny;
  tiny.vehicle_pos = tiny.vehicle_neg = 20;
  tiny.pedestrian_pos = tiny.pedestrian_neg = 15;
  tiny.dbn_windows_per_class = 30;
  tiny.pairing_scenes = 10;
  const SystemModels a = build_system_models(tiny);
  const SystemModels b = build_system_models(tiny);
  ASSERT_EQ(a.day.svm.dimension(), b.day.svm.dimension());
  for (std::size_t i = 0; i < a.day.svm.dimension(); ++i)
    EXPECT_FLOAT_EQ(a.day.svm.weights()[i], b.day.svm.weights()[i]);
  EXPECT_FLOAT_EQ(a.pedestrian.svm.bias(), b.pedestrian.svm.bias());
}

}  // namespace
}  // namespace avd::core
