// StreamServer's live introspection plane: every ops endpoint answers with a
// valid payload while a multi-stream serve() is in flight, /healthz flips
// 200 -> 503 under a forced SLO breach, and /profilez attributes samples to
// the live pipeline's spans.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/ops_server.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/stream_server.hpp"

namespace avd::runtime {
namespace {

using namespace std::chrono_literals;

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

std::vector<data::DriveSequence> streams(int n, int frames_per_segment,
                                         std::uint64_t seed) {
  std::vector<data::DriveSequence> seqs;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    data::SequenceSpec spec =
        data::DriveSequence::canonical_drive({240, 136}, frames_per_segment);
    spec.seed = seed + i;
    seqs.emplace_back(spec);
  }
  return seqs;
}

core::AdaptiveSystemConfig control_only() {
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  return cfg;
}

/// GET `target`, require HTTP 200 and (for .json/healthz-style bodies) that
/// the payload parses with the strict parser.
obs::json::Value get_json_ok(std::uint16_t port, const std::string& target,
                             int expect_status = 200) {
  const std::optional<obs::HttpResponse> res = obs::http_get(port, target);
  EXPECT_TRUE(res.has_value()) << target;
  if (!res.has_value()) return {};
  EXPECT_EQ(res->status, expect_status) << target;
  const std::optional<obs::json::Value> doc = obs::json::parse(res->body);
  EXPECT_TRUE(doc.has_value()) << target << " body: " << res->body;
  return doc.value_or(obs::json::Value{});
}

TEST(StreamOps, OpsPlaneDisabledByDefault) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());
  StreamServer server(system, {});
  EXPECT_EQ(server.ops_server(), nullptr);
  EXPECT_EQ(server.profiler(), nullptr);
}

TEST(StreamOps, BindFailureThrows) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig first_cfg;
  first_cfg.ops.enabled = true;
  StreamServer first(system, first_cfg);
  ASSERT_NE(first.ops_server(), nullptr);
  ASSERT_TRUE(first.ops_server()->running());

  StreamServerConfig clash;
  clash.ops.enabled = true;
  clash.ops.server.port = first.ops_server()->port();
  EXPECT_THROW(StreamServer(system, clash), std::runtime_error);
}

TEST(StreamOps, EveryEndpointAnswersDuringLiveServe) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.detect_workers = 2;
  // 8 streams x 24 frames x 20 ms holds / 2 workers ~ 1.9 s of serving, so
  // every scrape below (incl. the 0.5 s + 0.2 s profile windows) lands
  // mid-run.
  sc.simulated_accel_ms = 20.0;
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e6;  // keep health HEALTHY despite the holds
  sc.slo.telemetry_period = std::chrono::milliseconds(2);
  sc.ops.enabled = true;
  sc.ops.server.handler_threads = 3;
  StreamServer server(system, sc);
  ASSERT_NE(server.ops_server(), nullptr);
  const std::uint16_t port = server.ops_server()->port();
  ASSERT_NE(port, 0);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  // The ops plane answers before any serve has run.
  (void)get_json_ok(port, "/healthz");
  (void)get_json_ok(port, "/flightz");

  std::vector<StreamResult> results;
  std::thread serving([&] {
    results = server.serve_sequences(streams(8, 4, 6100));
  });

  // Concurrent scrapes while the serve is in flight: one thread hammering
  // /metricsz, one /tracez, plus the full endpoint sweep inline.
  std::atomic<bool> stop_scraping{false};
  std::atomic<int> scrape_failures{0};
  const auto scrape_loop = [&](const char* target) {
    while (!stop_scraping.load()) {
      const auto res = obs::http_get(port, target);
      if (!res.has_value() || res->status != 200) scrape_failures.fetch_add(1);
      std::this_thread::sleep_for(2ms);
    }
  };
  std::thread scraper_a(scrape_loop, "/metricsz");
  std::thread scraper_b(scrape_loop, "/tracez");

  const auto metricsz = obs::http_get(port, "/metricsz");
  ASSERT_TRUE(metricsz.has_value());
  EXPECT_EQ(metricsz->status, 200);
  EXPECT_EQ(metricsz->content_type, obs::kPrometheusContentType);
  EXPECT_EQ(metricsz->body.back(), '\n');
  EXPECT_NE(metricsz->body.find("process_uptime_seconds "),
            std::string::npos);
  EXPECT_NE(metricsz->body.find("build_info{"), std::string::npos);

  const obs::json::Value metrics_json = get_json_ok(port, "/metricsz.json");
  EXPECT_NE(metrics_json.find("counters"), nullptr);

  const obs::json::Value healthz = get_json_ok(port, "/healthz");
  const obs::json::Value* fleet = healthz.find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_FALSE(fleet->string.empty());

  const obs::json::Value tracez = get_json_ok(port, "/tracez");
  EXPECT_NE(tracez.find("span_stats"), nullptr);
  EXPECT_NE(tracez.find("retained"), nullptr);

  const obs::json::Value statusz = get_json_ok(port, "/statusz");
  ASSERT_NE(statusz.find("build"), nullptr);
  EXPECT_NE(statusz.find("build")->find("version"), nullptr);
  ASSERT_NE(statusz.find("config"), nullptr);
  EXPECT_EQ(statusz.find("config")->find("detect_workers")->number, 2.0);
  EXPECT_GT(statusz.find("uptime_seconds")->number, 0.0);

  const obs::json::Value flightz = get_json_ok(port, "/flightz");
  EXPECT_NE(flightz.find("streams"), nullptr);

  // /profilez mid-serve: the detect stage (1 ms simulated accelerator hold
  // per frame) dominates the open-span samples.
  const std::optional<obs::HttpResponse> profile =
      obs::http_get(port, "/profilez?seconds=0.5");
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->status, 200);
  EXPECT_NE(profile->body.find("detect_frame"), std::string::npos)
      << profile->body;

  const obs::json::Value profile_json =
      get_json_ok(port, "/profilez?seconds=0.2&format=json");
  ASSERT_NE(profile_json.find("stacks"), nullptr);
  EXPECT_GT(profile_json.find("ticks")->number, 0.0);

  // Bad query -> 400, unknown path -> 404; neither disturbs the serve.
  const auto bad = obs::http_get(port, "/profilez?seconds=banana");
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->status, 400);
  // Regression: comma-decimal inputs ("1,5") must be rejected whole, not
  // strtod-parsed as the locale-dependent prefix "1". Same for trailing
  // junk and non-positive windows.
  for (const char* q : {"/profilez?seconds=1,5", "/profilez?seconds=0.5x",
                        "/profilez?seconds=0", "/profilez?seconds=-1",
                        "/profilez?seconds=%20"}) {
    const auto rejected = obs::http_get(port, q);
    ASSERT_TRUE(rejected.has_value()) << q;
    EXPECT_EQ(rejected->status, 400) << q;
  }
  const auto missing = obs::http_get(port, "/does-not-exist");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  serving.join();
  stop_scraping.store(true);
  scraper_a.join();
  scraper_b.join();
  EXPECT_EQ(scrape_failures.load(), 0);

  // After the serve the sampler has ingested the run's chains: /tracez now
  // carries span stats for the pipeline stages.
  const obs::json::Value after = get_json_ok(port, "/tracez");
  EXPECT_GT(after.find("frames_seen")->number, 0.0);
  bool saw_detect = false;
  for (const obs::json::Value& s : after.find("span_stats")->array) {
    const obs::json::Value* name = s.find("name");
    if (name != nullptr && name->string == "detect_frame") saw_detect = true;
  }
  EXPECT_TRUE(saw_detect);

  tracer.set_enabled(false);
  tracer.clear();

  ASSERT_EQ(results.size(), 8u);
  for (const StreamResult& r : results)
    EXPECT_FALSE(r.report.frames.empty());
}

TEST(StreamOps, HealthzFlipsTo503OnForcedBreach) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.detect_workers = 2;
  sc.simulated_accel_ms = 5.0;    // stretch the run across many windows
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e-4;  // 100 ns: every frame misses
  sc.slo.telemetry_period = std::chrono::milliseconds(1);
  sc.slo.hysteresis.breaches_to_worsen = 1;
  sc.slo.hysteresis.clears_to_recover = 1000;
  sc.ops.enabled = true;
  StreamServer server(system, sc);
  const std::uint16_t port = server.ops_server()->port();

  // Healthy (200) before the serve starts.
  const auto before = obs::http_get(port, "/healthz");
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->status, 200);

  std::vector<StreamResult> results;
  std::thread serving([&] {
    results = server.serve_sequences(streams(2, 8, 6200));
  });

  // Poll until the breach drives some stream UNHEALTHY and /healthz answers
  // 503 mid-serve. The serve keeps the streams breaching to its end, so the
  // flip must be observable before the deadline.
  bool saw_503 = false;
  const auto poll_deadline = std::chrono::steady_clock::now() + 30s;
  while (!saw_503 && std::chrono::steady_clock::now() < poll_deadline) {
    const auto res = obs::http_get(port, "/healthz");
    if (res.has_value() && res->status == 503) saw_503 = true;
    std::this_thread::sleep_for(5ms);
  }
  serving.join();

  // The breach landed: mid-serve if we caught it, and in any case the final
  // verdict keeps /healthz at 503 after the serve.
  const obs::json::Value after =
      get_json_ok(port, "/healthz", /*expect_status=*/503);
  EXPECT_EQ(after.find("fleet")->string, "UNHEALTHY");
  EXPECT_TRUE(saw_503);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(server.fleet_health(), obs::HealthState::Unhealthy);
}

}  // namespace
}  // namespace avd::runtime
