// AdmissionController in isolation: ladder hysteresis (fast worsen, slow
// recover), the token bucket on a synthetic timeline, sticky force_level,
// fault-plan pinning and fleet pressure. No StreamServer involved — decide()
// and on_health_windows() are driven directly, so every expectation here is
// exact, not statistical.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "avd/runtime/admission.hpp"

namespace avd::runtime {
namespace {

using obs::HealthState;

AdmissionConfig ladder_config(int escalate = 2, int recover = 3) {
  AdmissionConfig c;
  c.enabled = true;
  c.ladder.escalate_after_windows = escalate;
  c.ladder.recover_after_windows = recover;
  return c;
}

TEST(Admission, StartsAtFullAndAdmitsEverything) {
  AdmissionController ac(2, ladder_config());
  for (int i = 0; i < 10; ++i) {
    const AdmissionDecision d = ac.decide(0, i, 0);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.level, DegradeLevel::Full);
    EXPECT_FALSE(d.coast);
  }
  EXPECT_EQ(ac.stats(0).admitted, 10u);
  EXPECT_EQ(ac.stats(0).shed, 0u);
  EXPECT_TRUE(ac.transitions(0).empty());
}

TEST(Admission, FirstDegradedWindowDropsToCoarseScan) {
  AdmissionController ac(1, ladder_config());
  ac.on_health_windows({HealthState::Degraded});
  EXPECT_EQ(ac.level(0), DegradeLevel::CoarseScan);
  const auto ts = ac.transitions(0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].from, DegradeLevel::Full);
  EXPECT_EQ(ts[0].to, DegradeLevel::CoarseScan);
  EXPECT_EQ(ts[0].reason, "health:degraded");
  EXPECT_EQ(ts[0].frame, -1);  // window-driven, not frame-driven
}

TEST(Admission, EscalatesOneRungPerEscalateAfterWindows) {
  AdmissionController ac(1, ladder_config(/*escalate=*/2));
  ac.on_health_windows({HealthState::Degraded});  // -> CoarseScan, streak reset
  EXPECT_EQ(ac.level(0), DegradeLevel::CoarseScan);
  ac.on_health_windows({HealthState::Degraded});  // streak 1: dwell
  EXPECT_EQ(ac.level(0), DegradeLevel::CoarseScan);
  ac.on_health_windows({HealthState::Degraded});  // streak 2: escalate
  EXPECT_EQ(ac.level(0), DegradeLevel::SkipCoast);
  ac.on_health_windows({HealthState::Degraded});
  EXPECT_EQ(ac.level(0), DegradeLevel::SkipCoast);
  ac.on_health_windows({HealthState::Degraded});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  // Shed is the floor; more degraded windows change nothing.
  ac.on_health_windows({HealthState::Degraded});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  EXPECT_EQ(ac.transitions(0).size(), 3u);
}

TEST(Admission, UnhealthyShedsImmediately) {
  AdmissionController ac(1, ladder_config());
  ac.on_health_windows({HealthState::Unhealthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  const AdmissionDecision d = ac.decide(0, 0, 0);
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.shed_reason, "shed-level");
  EXPECT_EQ(ac.stats(0).shed, 1u);
  EXPECT_EQ(ac.stats(0).shed_by_bucket, 0u);
}

TEST(Admission, MaxDegradedLevelCapsDegradedEscalationButNotUnhealthy) {
  AdmissionConfig cfg = ladder_config(/*escalate=*/1);
  cfg.ladder.max_degraded_level = 2;  // DEGRADED may reach SkipCoast, no more
  AdmissionController ac(1, cfg);
  for (int w = 0; w < 10; ++w)
    ac.on_health_windows({HealthState::Degraded});
  EXPECT_EQ(ac.level(0), DegradeLevel::SkipCoast);
  EXPECT_EQ(ac.transitions(0).size(), 2u);  // Full -> Coarse -> SkipCoast
  // UNHEALTHY ignores the cap.
  ac.on_health_windows({HealthState::Unhealthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
}

TEST(Admission, RecoveryIsSlowOneRungPerStreak) {
  // escalate=2: a single degraded window mid-recovery resets the healthy
  // streak but does NOT itself escalate (the dwell is 2 windows).
  AdmissionController ac(1, ladder_config(/*escalate=*/2, /*recover=*/3));
  ac.on_health_windows({HealthState::Unhealthy});  // -> Shed
  ASSERT_EQ(ac.level(0), DegradeLevel::Shed);

  // Two healthy windows: not enough; the third steps ONE rung up.
  ac.on_health_windows({HealthState::Healthy});
  ac.on_health_windows({HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  ac.on_health_windows({HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::SkipCoast);

  // A degraded window mid-recovery resets the healthy streak.
  ac.on_health_windows({HealthState::Healthy});
  ac.on_health_windows({HealthState::Healthy});
  ac.on_health_windows({HealthState::Degraded});  // streak reset (level holds)
  EXPECT_EQ(ac.level(0), DegradeLevel::SkipCoast);
  ac.on_health_windows({HealthState::Healthy});
  ac.on_health_windows({HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::SkipCoast);
  ac.on_health_windows({HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::CoarseScan);

  // All the way home needs another full streak.
  ac.on_health_windows({HealthState::Healthy});
  ac.on_health_windows({HealthState::Healthy});
  ac.on_health_windows({HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Full);
}

TEST(Admission, SkipCoastScansEveryNthFrameByIndex) {
  AdmissionConfig cfg = ladder_config(/*escalate=*/1);
  cfg.ladder.skip_modulus = 3;
  AdmissionController ac(1, cfg);
  ac.on_health_windows({HealthState::Degraded});  // CoarseScan
  ac.on_health_windows({HealthState::Degraded});  // SkipCoast
  ASSERT_EQ(ac.level(0), DegradeLevel::SkipCoast);
  for (int i = 0; i < 9; ++i) {
    const AdmissionDecision d = ac.decide(0, i, 0);
    EXPECT_TRUE(d.admit);
    EXPECT_EQ(d.coast, i % 3 != 0) << "frame " << i;
  }
  const AdmissionStats st = ac.stats(0);
  EXPECT_EQ(st.admitted, 9u);
  EXPECT_EQ(st.coasted, 6u);
  EXPECT_EQ(st.degraded_scans, 3u);
}

TEST(Admission, TokenBucketOnCallerTimeline) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.bucket.rate_fps = 10.0;  // one token per 100 ms
  cfg.bucket.burst = 2.0;
  AdmissionController ac(1, cfg);

  // Burst of 2 admitted at t=0, third refused by the bucket.
  EXPECT_TRUE(ac.decide(0, 0, 0).admit);
  EXPECT_TRUE(ac.decide(0, 1, 0).admit);
  const AdmissionDecision refused = ac.decide(0, 2, 0);
  EXPECT_FALSE(refused.admit);
  EXPECT_STREQ(refused.shed_reason, "token-bucket");

  // 100 ms later exactly one token has dripped in.
  const std::uint64_t t1 = 100'000'000;
  EXPECT_TRUE(ac.decide(0, 3, t1).admit);
  EXPECT_FALSE(ac.decide(0, 4, t1).admit);

  // A long idle stretch refills to burst, never beyond.
  const std::uint64_t t2 = t1 + 10'000'000'000ull;
  EXPECT_TRUE(ac.decide(0, 5, t2).admit);
  EXPECT_TRUE(ac.decide(0, 6, t2).admit);
  EXPECT_FALSE(ac.decide(0, 7, t2).admit);

  const AdmissionStats st = ac.stats(0);
  EXPECT_EQ(st.admitted, 5u);
  EXPECT_EQ(st.shed, 3u);
  EXPECT_EQ(st.shed_by_bucket, 3u);
}

TEST(Admission, ForceLevelIsSticky) {
  AdmissionController ac(1, ladder_config());
  ac.force_level(0, DegradeLevel::Shed, "watchdog");
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  // Neither healthy windows nor fault plans move a stuck stream.
  for (int i = 0; i < 20; ++i) ac.on_health_windows({HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  const AdmissionDecision d = ac.decide(0, 0, 0, /*forced_level=*/0);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  const auto ts = ac.transitions(0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].reason, "watchdog");
}

TEST(Admission, FaultPlanPinsThenReleasesToHealthTarget) {
  AdmissionController ac(1, ladder_config());
  ac.on_health_windows({HealthState::Degraded});  // health wants CoarseScan
  ASSERT_EQ(ac.level(0), DegradeLevel::CoarseScan);

  // Plan pins frame 5 to SkipCoast; the pin carries the frame index.
  const AdmissionDecision pinned = ac.decide(0, 5, 0, /*forced_level=*/2);
  EXPECT_TRUE(pinned.admit);
  EXPECT_EQ(pinned.level, DegradeLevel::SkipCoast);
  // Released on the next unpinned frame: back to the health machine's level.
  const AdmissionDecision released = ac.decide(0, 6, 0, std::nullopt);
  EXPECT_EQ(released.level, DegradeLevel::CoarseScan);

  const auto ts = ac.transitions(0);
  ASSERT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts[1].reason, "fault-plan");
  EXPECT_EQ(ts[1].frame, 5);
  EXPECT_EQ(ts[2].reason, "fault-plan-release");
  EXPECT_EQ(ts[2].frame, 6);
}

TEST(Admission, FleetPressureSkipsTheEscalationDwell) {
  AdmissionConfig slow = ladder_config(/*escalate=*/100);
  AdmissionController calm(2, slow);
  // Without fleet pressure the 100-window dwell holds both streams at 1.
  for (int i = 0; i < 4; ++i)
    calm.on_health_windows({HealthState::Degraded, HealthState::Degraded});
  EXPECT_EQ(calm.level(0), DegradeLevel::CoarseScan);

  AdmissionConfig pressured = slow;
  pressured.ladder.fleet_escalate_fraction = 0.5;
  AdmissionController fleet(2, pressured);
  for (int i = 0; i < 3; ++i)
    fleet.on_health_windows({HealthState::Degraded, HealthState::Degraded});
  // First window: Full->CoarseScan; with >= half the fleet hot, each further
  // window escalates a rung regardless of the dwell.
  EXPECT_EQ(fleet.level(0), DegradeLevel::Shed);
  EXPECT_EQ(fleet.level(1), DegradeLevel::Shed);
  bool saw_fleet_reason = false;
  for (const DegradeTransition& t : fleet.transitions(0))
    if (t.reason == "health:fleet-pressure") saw_fleet_reason = true;
  EXPECT_TRUE(saw_fleet_reason);
}

TEST(Admission, ExternalFleetPressureSkipsTheDwellAndClears) {
  // The cross-shard signal: no local fraction configured at all, yet a
  // raised external flag escalates one rung per window just like internal
  // fleet pressure — and dropping it restores the slow dwell.
  AdmissionConfig slow = ladder_config(/*escalate=*/100);
  AdmissionController ac(2, slow);
  ac.set_fleet_pressure(true);
  for (int i = 0; i < 3; ++i)
    ac.on_health_windows({HealthState::Degraded, HealthState::Healthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Shed);
  EXPECT_EQ(ac.level(1), DegradeLevel::Full);  // healthy stream untouched
  bool saw_fleet_reason = false;
  for (const DegradeTransition& t : ac.transitions(0))
    if (t.reason == "health:fleet-pressure") saw_fleet_reason = true;
  EXPECT_TRUE(saw_fleet_reason);

  AdmissionController calm(2, slow);
  calm.set_fleet_pressure(true);
  calm.set_fleet_pressure(false);  // cleared before any window: normal dwell
  for (int i = 0; i < 4; ++i)
    calm.on_health_windows({HealthState::Degraded, HealthState::Degraded});
  EXPECT_EQ(calm.level(0), DegradeLevel::CoarseScan);
}

TEST(Admission, TransitionCallbackFiresOncePerTransition) {
  AdmissionController ac(1, ladder_config(/*escalate=*/1));
  std::vector<DegradeTransition> seen;
  ac.set_transition_callback(
      [&seen](const DegradeTransition& t) { seen.push_back(t); });
  ac.on_health_windows({HealthState::Degraded});
  ac.on_health_windows({HealthState::Degraded});
  ac.on_health_windows({HealthState::Degraded});
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].to, DegradeLevel::CoarseScan);
  EXPECT_EQ(seen[1].to, DegradeLevel::SkipCoast);
  EXPECT_EQ(seen[2].to, DegradeLevel::Shed);
  EXPECT_EQ(ac.transitions().size(), 3u);  // all-streams view agrees
}

TEST(Admission, StreamsAreIndependent) {
  AdmissionController ac(3, ladder_config());
  ac.on_health_windows(
      {HealthState::Healthy, HealthState::Degraded, HealthState::Unhealthy});
  EXPECT_EQ(ac.level(0), DegradeLevel::Full);
  EXPECT_EQ(ac.level(1), DegradeLevel::CoarseScan);
  EXPECT_EQ(ac.level(2), DegradeLevel::Shed);
  EXPECT_TRUE(ac.decide(0, 0, 0).admit);
  EXPECT_TRUE(ac.decide(1, 0, 0).admit);
  EXPECT_FALSE(ac.decide(2, 0, 0).admit);
}

}  // namespace
}  // namespace avd::runtime
