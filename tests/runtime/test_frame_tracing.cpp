// Causal frame tracing through the StreamServer: a 4-stream x 4-worker run
// must yield, for every reported frame, one connected span chain
// ingest -> control -> detect -> report sharing a trace_id across >= 2
// threads — validated both on the drained spans (obs::assemble_frame_traces)
// and on the exported Chrome trace, re-parsed through obs::json.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "avd/obs/frame_trace.hpp"
#include "avd/obs/json.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/stream_server.hpp"
#include "avd/soc/trace_export.hpp"

namespace avd::runtime {
namespace {

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

std::vector<data::DriveSequence> four_streams(int frames_per_segment) {
  std::vector<data::DriveSequence> seqs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    data::SequenceSpec spec =
        data::DriveSequence::canonical_drive({240, 136}, frames_per_segment);
    spec.seed = 4100 + i;
    seqs.emplace_back(spec);
  }
  return seqs;
}

struct TracedRun {
  std::vector<StreamResult> results;
  std::vector<obs::SpanRecord> spans;
  std::string chrome_trace;
};

TracedRun traced_serve() {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);

  StreamServerConfig sc;
  sc.ingest_workers = 2;
  sc.control_workers = 2;
  sc.detect_workers = 4;
  StreamServer server(system, sc);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  TracedRun run;
  run.results = server.serve_sequences(four_streams(5));
  tracer.set_enabled(false);
  run.spans = tracer.drain();
  run.chrome_trace = soc::to_chrome_trace(server.server_log(), run.spans);
  return run;
}

TEST(FrameTracing, EveryReportedFrameHasAConnectedCrossThreadChain) {
  const TracedRun run = traced_serve();
  ASSERT_EQ(run.results.size(), 4u);

  const std::vector<obs::FrameTrace> traces =
      obs::assemble_frame_traces(run.spans);
  // Index the frame traces by (stream, frame).
  std::map<std::pair<std::int64_t, std::int64_t>, const obs::FrameTrace*> by_frame;
  for (const obs::FrameTrace& t : traces)
    if (t.stream >= 0 && t.frame >= 0)
      by_frame[{t.stream, t.frame}] = &t;

  std::size_t checked = 0;
  for (const StreamResult& result : run.results) {
    ASSERT_FALSE(result.report.frames.empty());
    for (const core::AdaptiveFrameReport& frame : result.report.frames) {
      const auto it = by_frame.find({result.stream, frame.index});
      ASSERT_NE(it, by_frame.end())
          << "no trace for stream " << result.stream << " frame "
          << frame.index;
      const obs::FrameTrace& t = *it->second;
      EXPECT_NE(t.trace_id, 0u);
      EXPECT_TRUE(t.has_span("ingest_frame")) << t.trace_id;
      EXPECT_TRUE(t.has_span("control_frame")) << t.trace_id;
      EXPECT_TRUE(t.has_span("detect_frame") || t.has_span("drop_frame"))
          << t.trace_id;
      EXPECT_TRUE(t.has_span("collect_report")) << t.trace_id;
      EXPECT_TRUE(t.connected()) << "trace " << t.trace_id
                                 << " has unresolvable parent links";
      EXPECT_GE(t.thread_count(), 2u) << t.trace_id;
      // Every span of the chain shares the one trace id.
      for (const obs::SpanRecord& s : t.spans)
        EXPECT_EQ(s.trace_id, t.trace_id);
      EXPECT_GT(t.critical_path_ns(), 0u);
      ++checked;
    }
  }
  EXPECT_GE(checked, 4u * 5u);  // at least frames_per_segment per stream
}

TEST(FrameTracing, ExportedChromeTraceLinksFramesWithFlowEvents) {
  const TracedRun run = traced_serve();
  const std::optional<obs::json::Value> doc =
      obs::json::parse(run.chrome_trace);
  ASSERT_TRUE(doc.has_value()) << "exported trace is not valid JSON";
  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, obs::json::Value::Type::Array);

  // Collect the span ("X") events' trace ids and the flow events per id.
  std::map<double, std::set<std::string>> span_names_of;  // trace_id -> names
  std::map<double, std::vector<std::string>> flow_phases_of;
  for (const obs::json::Value& e : events->array) {
    const obs::json::Value* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      const obs::json::Value* args = e.find("args");
      if (args == nullptr) continue;
      const obs::json::Value* trace_id = args->find("trace_id");
      if (trace_id == nullptr) continue;
      span_names_of[trace_id->number].insert(e.find("name")->string);
    } else if (ph->string == "s" || ph->string == "t" || ph->string == "f") {
      const obs::json::Value* id = e.find("id");
      ASSERT_NE(id, nullptr);
      flow_phases_of[id->number].push_back(ph->string);
    }
  }

  // Reported frames: 4 streams x canonical_drive(5) frames.
  std::size_t reported = 0;
  for (const StreamResult& r : run.results) reported += r.report.frames.size();
  ASSERT_GE(span_names_of.size(), reported);

  std::size_t linked = 0;
  for (const auto& [trace_id, names] : span_names_of) {
    if (names.count("collect_report") == 0) continue;  // not a full frame
    ++linked;
    EXPECT_TRUE(names.count("ingest_frame")) << trace_id;
    EXPECT_TRUE(names.count("control_frame")) << trace_id;
    // Each full frame renders as one flow arc: a start, a finish, and
    // optional intermediate steps.
    const auto flow = flow_phases_of.find(trace_id);
    ASSERT_NE(flow, flow_phases_of.end())
        << "frame trace " << trace_id << " has no flow events";
    EXPECT_GE(flow->second.size(), 2u);
    EXPECT_EQ(flow->second.front(), "s");
    EXPECT_EQ(flow->second.back(), "f");
  }
  EXPECT_EQ(linked, reported);
}

TEST(FrameTracing, DisabledTracerRecordsNothingAndServeStillWorks) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);
  StreamServer server(system, {});

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  const std::vector<StreamResult> results =
      server.serve_sequences(four_streams(3));
  ASSERT_EQ(results.size(), 4u);
  for (const StreamResult& r : results)
    EXPECT_FALSE(r.report.frames.empty());
  EXPECT_TRUE(tracer.snapshot().empty());
}

}  // namespace
}  // namespace avd::runtime
