// BoundedQueue: FIFO order, capacity enforcement, each backpressure policy,
// and a concurrent MPMC stress test with a conservation checksum.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "avd/runtime/bounded_queue.hpp"

namespace avd::runtime {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(q.push(i), PushOutcome::Accepted);
  for (int i = 0; i < 5; ++i) {
    const std::optional<int> v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueue, CapacityIsEnforced) {
  BoundedQueue<int> q(3, OverflowPolicy::DropNewest);
  EXPECT_EQ(q.capacity(), 3u);
  for (int i = 0; i < 3; ++i) q.push(i);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.push(99), PushOutcome::Rejected);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.stats().high_water, 3u);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_EQ(q.push(7), PushOutcome::Accepted);
}

TEST(BoundedQueue, DropOldestEvictsAndReturnsStalest) {
  BoundedQueue<int> q(2, OverflowPolicy::DropOldest);
  q.push(1);
  q.push(2);
  std::optional<int> displaced;
  EXPECT_EQ(q.push(3, &displaced), PushOutcome::Evicted);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 1);  // oldest goes
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(*q.pop(), 3);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(BoundedQueue, DropNewestRejectsAndReturnsIncoming) {
  BoundedQueue<int> q(2, OverflowPolicy::DropNewest);
  q.push(1);
  q.push(2);
  std::optional<int> displaced;
  EXPECT_EQ(q.push(3, &displaced), PushOutcome::Rejected);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(*displaced, 3);  // the fresh one is refused
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(BoundedQueue, BlockPolicyNeverDrops) {
  BoundedQueue<int> q(2, OverflowPolicy::Block);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  std::vector<int> got;
  while (std::optional<int> v = q.pop()) got.push_back(*v);
  producer.join();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_LE(q.stats().high_water, 2u);
}

TEST(BoundedQueue, CloseWakesConsumersAndRefusesProducers) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.close();
  EXPECT_EQ(q.push(2), PushOutcome::Closed);
  EXPECT_EQ(*q.pop(), 1);          // drains what was queued
  EXPECT_FALSE(q.pop().has_value());  // then signals end-of-stream
}

TEST(BoundedQueue, TryPopNonBlocking) {
  BoundedQueue<int> q(4);
  int out = 0;
  EXPECT_FALSE(q.try_pop(out));
  q.push(42);
  EXPECT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 42);
}

// MPMC stress: 4 producers push disjoint value ranges through a tiny queue
// while 4 consumers drain it. Blocking policy → conservation: every value
// arrives exactly once (checked by count and by sum).
TEST(BoundedQueue, ConcurrentStressConservesItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<std::uint64_t> q(7, OverflowPolicy::Block);

  std::vector<std::thread> threads;
  std::atomic<int> live_producers{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        q.push(static_cast<std::uint64_t>(p) * kPerProducer +
               static_cast<std::uint64_t>(i));
      if (live_producers.fetch_sub(1) == 1) q.close();
    });
  }

  std::atomic<std::uint64_t> popped{0};
  std::atomic<std::uint64_t> checksum{0};
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (std::optional<std::uint64_t> v = q.pop()) {
        popped.fetch_add(1);
        checksum.fetch_add(*v);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(checksum.load(), kTotal * (kTotal - 1) / 2);  // sum 0..N-1
  const QueueStats stats = q.stats();
  EXPECT_EQ(stats.pushed, kTotal);
  EXPECT_EQ(stats.popped, kTotal);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_LE(stats.high_water, 7u);
}

// close() must wake producers parked in the Block-policy not-full wait, and
// each woken push must report Closed (value dropped, not enqueued). Stress
// it: many producers keep a tiny queue saturated so most are mid-wait when
// close() lands, then check conservation — every push resolved, and
// everything Accepted was either popped before close or still queued after.
TEST(BoundedQueue, CloseWhileProducersBlockedInPush) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(2, OverflowPolicy::Block);

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        switch (q.push(i)) {
          case PushOutcome::Accepted: accepted.fetch_add(1); break;
          case PushOutcome::Closed: closed.fetch_add(1); break;
          default: FAIL() << "Block policy must never evict or reject";
        }
      }
    });
  }

  // Drain a little so producers make progress and repopulate the wait set,
  // then close with the queue saturated and producers blocked.
  std::uint64_t popped = 0;
  for (int i = 0; i < 200; ++i) {
    if (q.pop().has_value()) ++popped;
  }
  q.close();
  for (std::thread& t : producers) t.join();

  // Drain the survivors (pop() keeps returning queued items after close).
  while (q.pop().has_value()) ++popped;

  EXPECT_EQ(accepted.load() + closed.load(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(accepted.load(), popped);  // no Accepted item vanished
  EXPECT_GT(closed.load(), 0u);        // close really interrupted pushes
  EXPECT_EQ(q.stats().dropped, 0u);    // Closed is not a policy drop
}

// Under DropOldest nothing is lost silently: accepted+displaced accounts
// for every push, and survivors preserve FIFO order.
TEST(BoundedQueue, DropOldestAccountsForEveryItem) {
  BoundedQueue<int> q(4, OverflowPolicy::DropOldest);
  std::uint64_t displaced_count = 0;
  for (int i = 0; i < 100; ++i) {
    std::optional<int> displaced;
    q.push(i, &displaced);
    if (displaced) ++displaced_count;
  }
  std::vector<int> survivors;
  int out = 0;
  while (q.try_pop(out)) survivors.push_back(out);
  EXPECT_EQ(displaced_count + survivors.size(), 100u);
  EXPECT_TRUE(std::is_sorted(survivors.begin(), survivors.end()));
  EXPECT_EQ(survivors.size(), 4u);
  EXPECT_EQ(survivors.back(), 99);  // freshest survives
}

}  // namespace
}  // namespace avd::runtime
