// The fault-injection harness against a live StreamServer: one test per
// fault class (stall, garbage, transient error, slow worker + saturation,
// wedge -> watchdog), plus the two determinism guarantees the overload plane
// must not break — unaffected streams stay bit-identical to the no-fault
// run, and a ForceDegrade plan reproduces its transitions and detections
// exactly across serves.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "avd/runtime/fault_injection.hpp"
#include "avd/runtime/stream_server.hpp"

namespace avd::runtime {
namespace {

// ThreadSanitizer slows real frame work ~5-15x, so wall-clock thresholds
// (watchdog timeouts vs per-frame cost on a *healthy* stream) need headroom
// under the chaos lane or a legitimately slow frame reads as a wedge.
#if defined(__SANITIZE_THREAD__)
constexpr int kTimingScale = 10;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr int kTimingScale = 10;
#else
constexpr int kTimingScale = 1;
#endif
#else
constexpr int kTimingScale = 1;
#endif

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

/// Day->Dark drives, `2 * frames_per_segment` frames each; different seeds
/// per stream so cross-stream mixups would be visible.
std::vector<data::DriveSequence> make_streams(int n_streams,
                                              int frames_per_segment) {
  std::vector<data::DriveSequence> seqs;
  for (int i = 0; i < n_streams; ++i) {
    data::SequenceSpec spec;
    spec.frame_size = {240, 136};
    spec.segments = {{data::LightingCondition::Day, frames_per_segment},
                     {data::LightingCondition::Dark, frames_per_segment}};
    spec.seed = 515 + static_cast<std::uint64_t>(i);
    seqs.emplace_back(spec);
  }
  return seqs;
}

void expect_frames_identical(const core::AdaptiveFrameReport& a,
                             const core::AdaptiveFrameReport& b,
                             const std::string& where) {
  EXPECT_EQ(a.index, b.index) << where;
  EXPECT_EQ(a.light_level, b.light_level) << where;  // bit-exact double
  EXPECT_EQ(a.sensed, b.sensed) << where;
  EXPECT_EQ(a.active_config, b.active_config) << where;
  EXPECT_EQ(a.vehicle_processed, b.vehicle_processed) << where;
  EXPECT_EQ(a.pedestrian_processed, b.pedestrian_processed) << where;
  EXPECT_EQ(a.reconfig_triggered, b.reconfig_triggered) << where;
  EXPECT_EQ(a.vehicles_truth, b.vehicles_truth) << where;
  EXPECT_EQ(a.vehicle_match.true_positives, b.vehicle_match.true_positives)
      << where;
  EXPECT_EQ(a.vehicle_match.false_negatives, b.vehicle_match.false_negatives)
      << where;
  EXPECT_EQ(a.vehicle_match.false_positives, b.vehicle_match.false_positives)
      << where;
  EXPECT_EQ(a.degrade_level, b.degrade_level) << where;
  EXPECT_EQ(a.detect_coasted, b.detect_coasted) << where;
}

void expect_reports_identical(const core::AdaptiveRunReport& a,
                              const core::AdaptiveRunReport& b,
                              const std::string& where) {
  ASSERT_EQ(a.frames.size(), b.frames.size()) << where;
  for (std::size_t i = 0; i < a.frames.size(); ++i)
    expect_frames_identical(a.frames[i], b.frames[i],
                            where + " frame " + std::to_string(i));
  ASSERT_EQ(a.reconfigs.size(), b.reconfigs.size()) << where;
  for (std::size_t i = 0; i < a.reconfigs.size(); ++i) {
    EXPECT_EQ(a.reconfigs[i].config_name, b.reconfigs[i].config_name) << where;
    EXPECT_EQ(a.reconfigs[i].start.ps, b.reconfigs[i].start.ps) << where;
    EXPECT_EQ(a.reconfigs[i].end.ps, b.reconfigs[i].end.ps) << where;
  }
}

/// Transition equality up to wall-clock: everything but t_ns.
void expect_transitions_identical(const std::vector<DegradeTransition>& a,
                                  const std::vector<DegradeTransition>& b,
                                  const std::string& where) {
  ASSERT_EQ(a.size(), b.size()) << where;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream, b[i].stream) << where << " #" << i;
    EXPECT_EQ(a[i].from, b[i].from) << where << " #" << i;
    EXPECT_EQ(a[i].to, b[i].to) << where << " #" << i;
    EXPECT_EQ(a[i].frame, b[i].frame) << where << " #" << i;
    EXPECT_EQ(a[i].reason, b[i].reason) << where << " #" << i;
  }
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::AdaptiveSystemConfig cfg;
    cfg.run_detectors = true;
    system_ = new core::AdaptiveSystem(core::build_system_models(tiny()), cfg);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static core::AdaptiveSystem* system_;
};

core::AdaptiveSystem* FaultInjectionTest::system_ = nullptr;

TEST_F(FaultInjectionTest, ChaosPlanIsDeterministic) {
  const FaultPlan a = FaultPlan::chaos(7, 8, 20);
  const FaultPlan b = FaultPlan::chaos(7, 8, 20);
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::size_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].kind, b.faults[i].kind);
    EXPECT_EQ(a.faults[i].stream, b.faults[i].stream);
    EXPECT_EQ(a.faults[i].from_frame, b.faults[i].from_frame);
    EXPECT_EQ(a.faults[i].count, b.faults[i].count);
    EXPECT_EQ(a.faults[i].magnitude, b.faults[i].magnitude);
  }
  EXPECT_FALSE(a.faults.empty());  // seed 7 must actually produce faults
  const FaultPlan c = FaultPlan::chaos(8, 8, 20);
  bool differs = c.faults.size() != a.faults.size();
  for (std::size_t i = 0; !differs && i < a.faults.size(); ++i)
    differs = c.faults[i].kind != a.faults[i].kind ||
              c.faults[i].stream != a.faults[i].stream;
  EXPECT_TRUE(differs);  // different seed, different plan
}

// A stalling source only delays frames; per-stream results — including the
// stalled stream's — must be bit-identical to the sequential run. This also
// proves the ladder-active detect path (out_detections capture, coast
// ledger bookkeeping) does not perturb full-fidelity results.
TEST_F(FaultInjectionTest, SourceStallDelaysButNeverChangesResults) {
  const std::vector<data::DriveSequence> streams = make_streams(2, 3);
  FaultPlan plan;
  plan.faults.push_back({FaultKind::SourceStall, 0, 1, 3, 2.0});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.detect_workers = 2;
  sc.fault_injector = &injector;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_EQ(injector.counters().stalls, 3u);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    expect_reports_identical(results[s].report, system_->run(streams[s]),
                             "stream " + std::to_string(s));
    EXPECT_EQ(results[s].shed_frames, 0u);
    EXPECT_FALSE(results[s].source_failed);
    EXPECT_EQ(results[s].degrade_level, DegradeLevel::Full);
  }
}

TEST_F(FaultInjectionTest, GarbageFramesAreRefusedAtIngest) {
  const std::vector<data::DriveSequence> streams = make_streams(2, 3);
  const int n = streams[0].frame_count();
  FaultPlan plan;
  plan.seed = 99;
  plan.faults.push_back({FaultKind::GarbageFrame, 0, 2, 2, 0.0});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.fault_injector = &injector;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_EQ(injector.counters().garbage, 2u);
  EXPECT_EQ(results[0].garbage_frames, 2u);
  // Refused before index assignment: the surviving frames are densely
  // numbered 0..n-3 — no holes for the control plane to trip on.
  ASSERT_EQ(results[0].report.frames.size(), static_cast<std::size_t>(n - 2));
  for (int i = 0; i < n - 2; ++i)
    EXPECT_EQ(results[0].report.frames[static_cast<std::size_t>(i)].index, i);
  // The untargeted stream is untouched, bit for bit.
  EXPECT_EQ(results[1].garbage_frames, 0u);
  expect_reports_identical(results[1].report, system_->run(streams[1]),
                           "stream 1");
}

TEST_F(FaultInjectionTest, TransientSourceErrorsRetryToSuccess) {
  const std::vector<data::DriveSequence> streams = make_streams(1, 3);
  FaultPlan plan;
  plan.faults.push_back({FaultKind::SourceError, 0, 2, /*count=*/2, 0.0});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.fault_injector = &injector;
  sc.source_retry.max_attempts = 3;  // 2 failures + 1 success
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_EQ(injector.counters().errors, 2u);
  EXPECT_EQ(results[0].source_retries, 2u);
  EXPECT_FALSE(results[0].source_failed);
  // Retries recovered every frame: the stream is complete and identical.
  expect_reports_identical(results[0].report, system_->run(streams[0]),
                           "retried stream");
}

TEST_F(FaultInjectionTest, ExhaustedRetriesTruncateTheStream) {
  const std::vector<data::DriveSequence> streams = make_streams(1, 3);
  FaultPlan plan;
  plan.faults.push_back({FaultKind::SourceError, 0, 2, /*count=*/10, 0.0});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.fault_injector = &injector;
  sc.source_retry.max_attempts = 3;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_EQ(injector.counters().errors, 3u);  // one per attempt
  EXPECT_TRUE(results[0].source_failed);
  EXPECT_EQ(results[0].source_retries, 2u);  // attempts 2 and 3 were retries
  // Truncated exactly at the failing position; what came before is intact.
  ASSERT_EQ(results[0].report.frames.size(), 2u);
  const core::AdaptiveRunReport full = system_->run(streams[0]);
  for (std::size_t i = 0; i < 2; ++i)
    expect_frames_identical(results[0].report.frames[i], full.frames[i],
                            "surviving frame " + std::to_string(i));
}

// Slow detect workers + a tiny DropOldest queue: the saturation story. The
// serve must complete with every frame accounted — processed, dropped or
// shed — never lost.
TEST_F(FaultInjectionTest, DetectSlowdownSaturatesQueueWithoutLosingFrames) {
  const std::vector<data::DriveSequence> streams = make_streams(2, 3);
  const int n = streams[0].frame_count();
  FaultPlan plan;
  plan.faults.push_back({FaultKind::DetectSlowdown, -1, 0, n, 3.0});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.detect_workers = 1;
  sc.queue_capacity = 2;
  sc.detect_policy = OverflowPolicy::DropOldest;
  sc.fault_injector = &injector;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_GT(injector.counters().slowdown_frames, 0u);
  for (const StreamResult& r : results) {
    // Every frame surfaced as a report; drops are explicit, not silent.
    EXPECT_EQ(r.report.frames.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(r.report.frames[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(r.shed_frames, 0u);  // saturation drops are not admission sheds
  }
}

// The ladder-determinism guarantee: a ForceDegrade plan keyed on frame
// indices produces the same transitions AND the same per-frame reports on
// every serve, because the pin is applied at the per-stream-sequential
// control stage — wall clock never enters the decision.
TEST_F(FaultInjectionTest, ForceDegradePlanIsDeterministicAcrossServes) {
  const std::vector<data::DriveSequence> streams = make_streams(2, 4);
  const int n = streams[0].frame_count();  // 8 frames
  FaultPlan plan;
  plan.faults.push_back({FaultKind::ForceDegrade, 0, 2, 2, 1.0});  // coarse
  plan.faults.push_back({FaultKind::ForceDegrade, 0, 5, 3, 2.0});  // skip-coast

  const auto serve_once = [&] {
    FaultInjector injector(plan);
    StreamServerConfig sc;
    sc.detect_workers = 3;
    sc.fault_injector = &injector;
    StreamServer server(*system_, sc);
    return server.serve_sequences(streams);
  };
  const std::vector<StreamResult> first = serve_once();
  const std::vector<StreamResult> second = serve_once();

  // Bit-identical reports and identical transition sequences, twice over.
  for (std::size_t s = 0; s < streams.size(); ++s) {
    expect_reports_identical(first[s].report, second[s].report,
                             "serve/serve stream " + std::to_string(s));
    expect_transitions_identical(first[s].degrade_transitions,
                                 second[s].degrade_transitions,
                                 "stream " + std::to_string(s));
  }
  // The pinned levels landed on exactly the planned frames.
  const auto& frames = first[0].report.frames;
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const core::AdaptiveFrameReport& f = frames[static_cast<std::size_t>(i)];
    const int expected = (i >= 2 && i < 4) ? 1 : (i >= 5 ? 2 : 0);
    EXPECT_EQ(f.degrade_level, expected) << "frame " << i;
    // Level 2 coasts every frame whose index is not a multiple of the
    // skip modulus (default 3).
    EXPECT_EQ(f.detect_coasted, expected == 2 && i % 3 != 0) << "frame " << i;
  }
  // Levels: frames 2,3 coarse; frames 5..7 skip-coast, of which 6 scans
  // (6 % 3 == 0) and 5,7 coast.
  EXPECT_EQ(first[0].coasted_frames, 2u);
  EXPECT_EQ(first[0].degraded_scans, 3u);
  EXPECT_EQ(second[0].coasted_frames, 2u);
  // The untargeted stream never leaves Full and matches sequential.
  EXPECT_TRUE(first[1].degrade_transitions.empty());
  expect_reports_identical(first[1].report, system_->run(streams[1]),
                           "stream 1 vs sequential");
}

// ForceDegrade to level 3: frames are shed with full accounting — present
// in the report with vehicle_processed=false and degrade_level 3, counted
// in shed_frames, and the pedestrian partition (static) keeps running.
TEST_F(FaultInjectionTest, ForcedShedProducesAccountedReports) {
  const std::vector<data::DriveSequence> streams = make_streams(1, 3);
  const int n = streams[0].frame_count();
  FaultPlan plan;
  plan.faults.push_back({FaultKind::ForceDegrade, 0, 2, 2, 3.0});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.fault_injector = &injector;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_EQ(results[0].shed_frames, 2u);
  ASSERT_EQ(results[0].report.frames.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto& f = results[0].report.frames[static_cast<std::size_t>(i)];
    if (i >= 2 && i < 4) {
      EXPECT_FALSE(f.vehicle_processed) << "frame " << i;
      EXPECT_EQ(f.degrade_level, 3) << "frame " << i;
      EXPECT_TRUE(f.pedestrian_processed) << "frame " << i;
    } else {
      EXPECT_EQ(f.degrade_level, 0) << "frame " << i;
    }
  }
}

// A wedged source (stalls far past the watchdog timeout) is converted into
// a degrade-level-3 event: watchdog_fired, the stream truncated and shed,
// the serve over in bounded time — and the healthy stream untouched.
TEST_F(FaultInjectionTest, WatchdogConvertsWedgedStreamIntoShed) {
  const std::vector<data::DriveSequence> streams = make_streams(2, 3);
  FaultPlan plan;
  plan.faults.push_back(
      {FaultKind::SourceStall, 0, 1, 100, 400.0 * kTimingScale});
  FaultInjector injector(plan);

  StreamServerConfig sc;
  sc.ingest_workers = 2;  // the healthy stream must not wait behind the wedge
  sc.fault_injector = &injector;
  sc.watchdog.enabled = true;
  sc.watchdog.timeout = std::chrono::milliseconds(100 * kTimingScale);
  sc.watchdog.poll = std::chrono::milliseconds(20);
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  EXPECT_TRUE(results[0].watchdog_fired);
  EXPECT_EQ(results[0].degrade_level, DegradeLevel::Shed);
  bool watchdog_reason = false;
  for (const DegradeTransition& t : results[0].degrade_transitions)
    if (t.reason == "watchdog") watchdog_reason = true;
  EXPECT_TRUE(watchdog_reason);
  // Truncated: the source was abandoned after the wedge was detected.
  EXPECT_LT(results[0].report.frames.size(),
            static_cast<std::size_t>(streams[0].frame_count()));
  EXPECT_FALSE(results[1].watchdog_fired);
  expect_reports_identical(results[1].report, system_->run(streams[1]),
                           "healthy stream");
}

// Admission control switched on but with a healthy fleet (no SLO pressure,
// no bucket) must remain bit-identical to the sequential path: the plane's
// cost when idle is bookkeeping, never behaviour.
TEST_F(FaultInjectionTest, IdleAdmissionPlaneIsBitIdentical) {
  const std::vector<data::DriveSequence> streams = make_streams(2, 3);
  StreamServerConfig sc;
  sc.admission.enabled = true;
  sc.detect_workers = 2;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    expect_reports_identical(results[s].report, system_->run(streams[s]),
                             "stream " + std::to_string(s));
    EXPECT_EQ(results[s].degrade_level, DegradeLevel::Full);
    EXPECT_TRUE(results[s].degrade_transitions.empty());
    EXPECT_EQ(results[s].shed_frames, 0u);
    EXPECT_EQ(results[s].coasted_frames, 0u);
  }
}

// The whole chaos diet at once: a seeded plan across 4 streams must leave
// the serve complete, accounted and reproducible in its plan.
TEST_F(FaultInjectionTest, ChaosServeCompletesWithFullAccounting) {
  const std::vector<data::DriveSequence> streams = make_streams(4, 3);
  const int n = streams[0].frame_count();
  FaultInjector injector(FaultPlan::chaos(42, 4, n));
  ASSERT_FALSE(injector.plan().faults.empty());

  StreamServerConfig sc;
  sc.ingest_workers = 2;
  sc.control_workers = 2;
  sc.detect_workers = 3;
  sc.fault_injector = &injector;
  StreamServer server(*system_, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  ASSERT_EQ(results.size(), 4u);
  for (const StreamResult& r : results) {
    // Whatever the plan did, every ingested frame surfaced exactly once.
    EXPECT_LE(r.report.frames.size(), static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < r.report.frames.size(); ++i)
      EXPECT_EQ(r.report.frames[i].index, static_cast<int>(i));
    EXPECT_GE(static_cast<int>(r.degrade_level), 0);
    EXPECT_LE(static_cast<int>(r.degrade_level), 3);
  }
}

}  // namespace
}  // namespace avd::runtime
