#include "avd/runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace avd::runtime {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr int kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.run_indexed(kCount, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroThreadsRunsOnCaller) {
  // A zero-thread pool degenerates to sequential caller execution — the
  // caller-helping design means run_indexed never depends on workers.
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int> order;
  pool.run_indexed(8, [&](int i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPool, ZeroCountReturnsImmediately) {
  ThreadPool pool(2);
  pool.run_indexed(0, [](int) { FAIL() << "no index should run"; });
  pool.run_indexed(-3, [](int) { FAIL() << "no index should run"; });
}

TEST(ThreadPool, CallerParticipates) {
  // With tasks that block until everyone arrives, a 1-thread pool can only
  // finish a 2-task batch if the calling thread runs one of them.
  ThreadPool pool(1);
  std::atomic<int> arrived{0};
  pool.run_indexed(2, [&](int) {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, NestedRunIndexedDoesNotDeadlock) {
  // A task submitting to its own pool must self-help: with every worker
  // occupied by outer tasks, inner batches still complete.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run_indexed(4, [&](int) {
    pool.run_indexed(8, [&](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  // Several threads using one pool simultaneously — the StreamServer shape:
  // pooled detect workers each running nested scans.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c)
    callers.emplace_back([&] {
      for (int round = 0; round < 20; ++round)
        pool.run_indexed(16, [&](int) { total.fetch_add(1); });
    });
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), 4 * 20 * 16);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run_indexed(8,
                       [](int i) {
                         if (i == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool stays usable after a throwing batch.
  std::atomic<int> ran{0};
  pool.run_indexed(4, [&](int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, ManySmallBatches) {
  // Stresses batch setup/teardown and the worker wakeup path (TSan covers
  // this file via scripts/check.sh).
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round)
    pool.run_indexed(5, [&](int i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 200L * (0 + 1 + 2 + 3 + 4));
}

TEST(ThreadPool, WorkSpreadsAcrossThreads) {
  // Not a strict guarantee per batch, but across many slow tasks more than
  // one thread must participate.
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.run_indexed(64, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

}  // namespace
}  // namespace avd::runtime
