// StageMetrics / LatencyHistogram: bin math, percentile accuracy bounds,
// concurrent recording, and the EventLog/JSON export path.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "avd/runtime/stage_metrics.hpp"
#include "avd/soc/trace_export.hpp"

namespace avd::runtime {
namespace {

TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::bin_index(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::bin_value(static_cast<int>(v)), v);
  }
  h.record_ns(7);
  EXPECT_EQ(h.percentile_ns(0.5), 7u);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max_ns(), 7u);
}

TEST(LatencyHistogram, BinValueStaysCloseToSample) {
  // Log-linear bins with 8 sub-buckets per octave: representative value
  // within ~7 % of any sample.
  for (std::uint64_t v : {20ull, 100ull, 1000ull, 123456ull, 9999999ull,
                          123456789ull, 55555555555ull}) {
    const int bin = LatencyHistogram::bin_index(v);
    const double rep = static_cast<double>(LatencyHistogram::bin_value(bin));
    const double rel = std::abs(rep - static_cast<double>(v)) /
                       static_cast<double>(v);
    EXPECT_LT(rel, 0.07) << "v=" << v << " rep=" << rep;
  }
}

TEST(LatencyHistogram, PercentilesOrderedAndBracketed) {
  LatencyHistogram h;
  // 100 samples: 1..100 microseconds.
  for (std::uint64_t i = 1; i <= 100; ++i) h.record_ns(i * 1000);
  const std::uint64_t p50 = h.percentile_ns(0.50);
  const std::uint64_t p95 = h.percentile_ns(0.95);
  const std::uint64_t p99 = h.percentile_ns(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Approximate but in the right neighbourhood.
  EXPECT_NEAR(static_cast<double>(p50), 50e3, 50e3 * 0.15);
  EXPECT_NEAR(static_cast<double>(p95), 95e3, 95e3 * 0.15);
  EXPECT_GE(h.max_ns(), 100000u);
  EXPECT_NEAR(h.mean_ns(), 50500.0, 1.0);
}

TEST(LatencyHistogram, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_ns(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordingLosesNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i)
        h.record_ns(static_cast<std::uint64_t>(i % 977) + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(StageMetrics, CountersAndHighWater) {
  StageMetrics m("detect");
  m.add_processed(10);
  m.add_dropped(3);
  m.update_queue_high_water(5);
  m.update_queue_high_water(2);  // lower → ignored
  m.record_latency(std::chrono::microseconds(250));
  const StageSnapshot s = m.snapshot();
  EXPECT_EQ(s.stage, "detect");
  EXPECT_EQ(s.processed, 10u);
  EXPECT_EQ(s.dropped, 3u);
  EXPECT_EQ(s.queue_high_water, 5u);
  EXPECT_EQ(s.count, 1u);
  EXPECT_GT(s.p50_ns, 200000u);
  EXPECT_LT(s.p50_ns, 300000u);
}

TEST(RuntimeMetrics, ExportRidesTheSocTracePath) {
  RuntimeMetrics metrics;
  metrics.detect.add_processed(42);
  metrics.detect.add_dropped(2);
  metrics.detect.record_latency(std::chrono::milliseconds(3));

  soc::EventLog log;
  append_metrics_events(metrics, soc::TimePoint{1000}, log);
  ASSERT_EQ(log.size(), 4u);  // one event per stage
  const auto detect_events = log.from("runtime/detect");
  ASSERT_EQ(detect_events.size(), 1u);
  EXPECT_NE(detect_events[0].message.find("processed=42"), std::string::npos);
  EXPECT_NE(detect_events[0].message.find("dropped=2"), std::string::npos);

  // The chrome-trace exporter accepts the log unchanged.
  const std::string trace = soc::to_chrome_trace(log);
  EXPECT_NE(trace.find("runtime/detect"), std::string::npos);
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);

  const std::string json = metrics_to_json(metrics);
  EXPECT_NE(json.find("\"stage\":\"detect\""), std::string::npos);
  EXPECT_NE(json.find("\"processed\":42"), std::string::npos);
}

}  // namespace
}  // namespace avd::runtime
