// StreamServer SLO wiring: per-stream health monitoring driven by the
// always-on telemetry exporter — healthy on a comfortable budget, unhealthy
// when every frame busts the deadline, with transitions and callbacks
// surfaced through the server API, plus the per-frame latency accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/stream_server.hpp"

namespace avd::runtime {
namespace {

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

std::vector<data::DriveSequence> streams(int n, int frames_per_segment,
                                         std::uint64_t seed) {
  std::vector<data::DriveSequence> seqs;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    data::SequenceSpec spec =
        data::DriveSequence::canonical_drive({240, 136}, frames_per_segment);
    spec.seed = seed + i;
    seqs.emplace_back(spec);
  }
  return seqs;
}

core::AdaptiveSystemConfig control_only() {
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  return cfg;
}

TEST(StreamSlo, ComfortableBudgetStaysHealthy) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e6;  // nothing misses a ~17 min budget
  sc.slo.telemetry_period = std::chrono::milliseconds(2);
  StreamServer server(system, sc);
  const std::vector<StreamResult> results =
      server.serve_sequences(streams(2, 4, 5200));

  ASSERT_EQ(results.size(), 2u);
  for (const StreamResult& r : results) {
    EXPECT_EQ(r.health, obs::HealthState::Healthy);
    EXPECT_TRUE(r.health_transitions.empty());
    EXPECT_EQ(r.deadline_misses, 0u);
  }
  ASSERT_EQ(server.stream_health().size(), 2u);
  EXPECT_EQ(server.stream_health()[0], obs::HealthState::Healthy);
}

TEST(StreamSlo, ImpossibleBudgetGoesUnhealthyAndFiresCallback) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.detect_workers = 2;
  sc.simulated_accel_ms = 2.0;       // stretch the run across many windows
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e-4;     // 100 ns: every frame misses
  sc.slo.telemetry_period = std::chrono::milliseconds(1);
  sc.slo.hysteresis.breaches_to_worsen = 1;
  // Idle tail windows after the last frame must not walk the state back.
  sc.slo.hysteresis.clears_to_recover = 1000;
  StreamServer server(system, sc);

  std::atomic<int> callbacks{0};
  server.set_health_callback(
      [&callbacks](int stream, const obs::HealthTransition& t) {
        EXPECT_GE(stream, 0);
        EXPECT_NE(t.to, obs::HealthState::Healthy);
        callbacks.fetch_add(1);
      });

  const std::vector<StreamResult> results =
      server.serve_sequences(streams(2, 6, 5300));
  ASSERT_EQ(results.size(), 2u);
  for (const StreamResult& r : results) {
    // Every reported frame missed the 100 ns budget...
    EXPECT_EQ(r.deadline_misses, r.report.frames.size());
    // ...so the frame_deadline rule (100 % >> 25 %) drove the stream to
    // UNHEALTHY in the first evaluated window.
    EXPECT_EQ(r.health, obs::HealthState::Unhealthy);
    ASSERT_FALSE(r.health_transitions.empty());
    EXPECT_EQ(r.health_transitions.back().to, obs::HealthState::Unhealthy);
    EXPECT_NE(r.health_transitions.back().reason.find("frame_deadline"),
              std::string::npos);
  }
  EXPECT_GE(callbacks.load(), 2);
}

TEST(StreamSlo, TelemetryJsonlSinkIsWrittenDuringServe) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  const std::string path = testing::TempDir() + "stream_slo_telemetry.jsonl";
  std::remove(path.c_str());

  StreamServerConfig sc;
  sc.slo.enabled = true;
  sc.slo.telemetry_period = std::chrono::milliseconds(2);
  sc.slo.telemetry_jsonl = path;
  StreamServer server(system, sc);
  (void)server.serve_sequences(streams(1, 4, 5400));

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ++lines;
    const std::optional<obs::json::Value> doc = obs::json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->find("t_ns"), nullptr);
    EXPECT_NE(doc->find("seq"), nullptr);
    ASSERT_NE(doc->find("counters"), nullptr);
    // The per-stream labeled counters the SLO rules watch are in every
    // sample, and the rollup gives every row the fleet view too.
    EXPECT_NE(doc->find("counters")->find("runtime.frames{stream=\"0\"}"),
              nullptr);
    EXPECT_NE(doc->find("counters")->find("runtime.frames"), nullptr);
  }
  EXPECT_GE(lines, 1u);  // stop() guarantees at least the final sample
  std::remove(path.c_str());
}

TEST(StreamSlo, DisabledMonitoringStillCountsLatencyAndFrames) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::Labels stream0{{"stream", "0"}};
  const std::uint64_t frames_before =
      registry.counter("runtime.frames", stream0).value();
  const std::uint64_t latency_before =
      registry.histogram("runtime.frame.latency_ns", stream0).count();

  StreamServer server(system, {});  // slo.enabled defaults to false
  const std::vector<StreamResult> results =
      server.serve_sequences(streams(1, 3, 5500));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].health, obs::HealthState::Healthy);
  EXPECT_TRUE(results[0].health_transitions.empty());
  EXPECT_EQ(server.fleet_health(), obs::HealthState::Healthy);

  const std::uint64_t served = results[0].report.frames.size();
  EXPECT_EQ(registry.counter("runtime.frames", stream0).value() -
                frames_before,
            served);
  EXPECT_GE(registry.histogram("runtime.frame.latency_ns", stream0).count() -
                latency_before,
            served);
  // End-of-serve rollup: the unlabeled fleet series cover the stream's
  // frames even with monitoring disabled.
  EXPECT_GE(registry.counter("runtime.frames").value(), served);
  EXPECT_GE(registry.histogram("runtime.frame.latency_ns").count(), served);
}

TEST(StreamSlo, ForcedBreachWritesParseableFlightBundle) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.simulated_accel_ms = 2.0;
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e-4;  // 100 ns: every frame misses
  sc.slo.telemetry_period = std::chrono::milliseconds(1);
  sc.slo.hysteresis.breaches_to_worsen = 1;
  sc.slo.hysteresis.clears_to_recover = 1000;
  sc.slo.flight_dump_dir = testing::TempDir();
  StreamServer server(system, sc);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const std::vector<StreamResult> results =
      server.serve_sequences(streams(2, 6, 5600));
  tracer.set_enabled(false);
  tracer.clear();

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(server.fleet_health(), obs::HealthState::Unhealthy);

  // The UNHEALTHY transition produced an on-disk bundle...
  ASSERT_FALSE(server.last_flight_bundle_path().empty());
  std::ifstream in(server.last_flight_bundle_path());
  ASSERT_TRUE(in.is_open()) << server.last_flight_bundle_path();
  std::stringstream buf;
  buf << in.rdbuf();
  const std::optional<obs::json::Value> doc = obs::json::parse(buf.str());
  ASSERT_TRUE(doc.has_value()) << "bundle is not valid JSON";

  // ...that is self-contained: config, telemetry, the SLO transitions that
  // tripped it, and per-stream frame chains connected ingest -> report.
  EXPECT_NE(doc->find("config"), nullptr);
  const obs::json::Value* transitions = doc->find("slo_transitions");
  ASSERT_NE(transitions, nullptr);
  EXPECT_FALSE(transitions->array.empty());
  const obs::json::Value* telemetry = doc->find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_FALSE(telemetry->array.empty());
  const obs::json::Value* streams_obj = doc->find("streams");
  ASSERT_NE(streams_obj, nullptr);
  ASSERT_FALSE(streams_obj->object.empty());
  std::size_t connected_chains = 0;
  for (const auto& [stream_id, entry] : streams_obj->object) {
    const obs::json::Value* frames = entry.find("frames");
    ASSERT_NE(frames, nullptr) << stream_id;
    for (const obs::json::Value& frame : frames->array) {
      const obs::json::Value* connected = frame.find("connected");
      ASSERT_NE(connected, nullptr);
      EXPECT_TRUE(connected->boolean);
      const obs::json::Value* spans = frame.find("spans");
      ASSERT_NE(spans, nullptr);
      bool has_ingest = false;
      bool has_report = false;
      bool has_drop = false;
      for (const obs::json::Value& span : spans->array) {
        const obs::json::Value* name = span.find("name");
        ASSERT_NE(name, nullptr);
        if (name->string == "ingest_frame") has_ingest = true;
        if (name->string == "collect_report") has_report = true;
        if (name->string == "drop_frame") has_drop = true;
      }
      EXPECT_TRUE(has_ingest);
      // A frame either made it to the report stage or was dropped under
      // backpressure — both leave a complete, explained chain. The only
      // other shape is the single-span end-of-stream ingest probe.
      EXPECT_TRUE(has_report || has_drop || spans->array.size() == 1u);
      if (has_report) ++connected_chains;
    }
  }
  // At least one full ingest -> report chain made it into the bundle.
  EXPECT_GT(connected_chains, 0u);
  std::remove(server.last_flight_bundle_path().c_str());

  // The tail sampler retained the breaching frames as Marked chains.
  ASSERT_NE(server.trace_sampler(), nullptr);
  EXPECT_GT(server.trace_sampler()->frames_retained(), 0u);
  bool saw_marked = false;
  for (const obs::RetainedFrame& f : server.trace_sampler()->retained())
    if (f.reason == obs::RetainReason::Marked) saw_marked = true;
  EXPECT_TRUE(saw_marked);
}

TEST(StreamSlo, OneSaturatedStreamDegradesOnlyItself) {
  // Unit-level twin of the fleet story: two per-stream monitors over the
  // labeled series, synthetic windows where only stream 0 misses deadlines.
  obs::SloConfig hysteresis;
  hysteresis.breaches_to_worsen = 2;  // hysteresis: one bad window is noise
  obs::SloMonitor m0("stream0", obs::standard_stream_rules_labeled(0),
                     hysteresis);
  obs::SloMonitor m1("stream1", obs::standard_stream_rules_labeled(1),
                     hysteresis);

  const auto sample = [](std::uint64_t t_ns, std::uint64_t frames0,
                         std::uint64_t miss0, std::uint64_t frames1,
                         std::uint64_t miss1) {
    obs::TelemetrySample s;
    s.t_ns = t_ns;
    s.metrics.counters = {
        {obs::labeled_name("runtime.deadline_miss", {{"stream", "0"}}), miss0},
        {obs::labeled_name("runtime.deadline_miss", {{"stream", "1"}}), miss1},
        {obs::labeled_name("runtime.frames", {{"stream", "0"}}), frames0},
        {obs::labeled_name("runtime.frames", {{"stream", "1"}}), frames1},
    };
    return s;
  };

  // Three windows: stream 0 misses every deadline, stream 1 none.
  const obs::TelemetrySample s0 = sample(1000, 0, 0, 0, 0);
  const obs::TelemetrySample s1 = sample(2000, 10, 10, 10, 0);
  const obs::TelemetrySample s2 = sample(3000, 20, 20, 20, 0);
  const obs::TelemetrySample s3 = sample(4000, 30, 30, 30, 0);

  // First breaching window: hysteresis holds stream 0 at HEALTHY.
  m0.observe(s0, s1);
  m1.observe(s0, s1);
  EXPECT_EQ(m0.state(), obs::HealthState::Healthy);

  m0.observe(s1, s2);
  m1.observe(s1, s2);
  m0.observe(s2, s3);
  m1.observe(s2, s3);

  // Only the saturated stream degraded; its neighbour never moved.
  EXPECT_EQ(m0.state(), obs::HealthState::Unhealthy);
  EXPECT_EQ(m1.state(), obs::HealthState::Healthy);
  EXPECT_TRUE(m1.transitions().empty());

  // The fleet rollup reports worst-of.
  const std::vector<obs::HealthState> fleet{m0.state(), m1.state()};
  EXPECT_EQ(obs::worst_of(fleet), obs::HealthState::Unhealthy);
  EXPECT_EQ(obs::worst_of({}), obs::HealthState::Healthy);

  // Transition timestamps are ordered and carry window-closing times.
  const std::vector<obs::HealthTransition> ts = m0.transitions();
  ASSERT_FALSE(ts.empty());
  for (std::size_t i = 1; i < ts.size(); ++i)
    EXPECT_LE(ts[i - 1].t_ns, ts[i].t_ns);
  EXPECT_EQ(ts.front().entity, "stream0");
  EXPECT_NE(ts.front().reason.find("frame_deadline"), std::string::npos);
}

}  // namespace
}  // namespace avd::runtime
