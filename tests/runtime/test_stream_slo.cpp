// StreamServer SLO wiring: per-stream health monitoring driven by the
// always-on telemetry exporter — healthy on a comfortable budget, unhealthy
// when every frame busts the deadline, with transitions and callbacks
// surfaced through the server API, plus the per-frame latency accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/runtime/stream_server.hpp"

namespace avd::runtime {
namespace {

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

std::vector<data::DriveSequence> streams(int n, int frames_per_segment,
                                         std::uint64_t seed) {
  std::vector<data::DriveSequence> seqs;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    data::SequenceSpec spec =
        data::DriveSequence::canonical_drive({240, 136}, frames_per_segment);
    spec.seed = seed + i;
    seqs.emplace_back(spec);
  }
  return seqs;
}

core::AdaptiveSystemConfig control_only() {
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  return cfg;
}

TEST(StreamSlo, ComfortableBudgetStaysHealthy) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e6;  // nothing misses a ~17 min budget
  sc.slo.telemetry_period = std::chrono::milliseconds(2);
  StreamServer server(system, sc);
  const std::vector<StreamResult> results =
      server.serve_sequences(streams(2, 4, 5200));

  ASSERT_EQ(results.size(), 2u);
  for (const StreamResult& r : results) {
    EXPECT_EQ(r.health, obs::HealthState::Healthy);
    EXPECT_TRUE(r.health_transitions.empty());
    EXPECT_EQ(r.deadline_misses, 0u);
  }
  ASSERT_EQ(server.stream_health().size(), 2u);
  EXPECT_EQ(server.stream_health()[0], obs::HealthState::Healthy);
}

TEST(StreamSlo, ImpossibleBudgetGoesUnhealthyAndFiresCallback) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  StreamServerConfig sc;
  sc.detect_workers = 2;
  sc.simulated_accel_ms = 2.0;       // stretch the run across many windows
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e-4;     // 100 ns: every frame misses
  sc.slo.telemetry_period = std::chrono::milliseconds(1);
  sc.slo.hysteresis.breaches_to_worsen = 1;
  // Idle tail windows after the last frame must not walk the state back.
  sc.slo.hysteresis.clears_to_recover = 1000;
  StreamServer server(system, sc);

  std::atomic<int> callbacks{0};
  server.set_health_callback(
      [&callbacks](int stream, const obs::HealthTransition& t) {
        EXPECT_GE(stream, 0);
        EXPECT_NE(t.to, obs::HealthState::Healthy);
        callbacks.fetch_add(1);
      });

  const std::vector<StreamResult> results =
      server.serve_sequences(streams(2, 6, 5300));
  ASSERT_EQ(results.size(), 2u);
  for (const StreamResult& r : results) {
    // Every reported frame missed the 100 ns budget...
    EXPECT_EQ(r.deadline_misses, r.report.frames.size());
    // ...so the frame_deadline rule (100 % >> 25 %) drove the stream to
    // UNHEALTHY in the first evaluated window.
    EXPECT_EQ(r.health, obs::HealthState::Unhealthy);
    ASSERT_FALSE(r.health_transitions.empty());
    EXPECT_EQ(r.health_transitions.back().to, obs::HealthState::Unhealthy);
    EXPECT_NE(r.health_transitions.back().reason.find("frame_deadline"),
              std::string::npos);
  }
  EXPECT_GE(callbacks.load(), 2);
}

TEST(StreamSlo, TelemetryJsonlSinkIsWrittenDuringServe) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  const std::string path = testing::TempDir() + "stream_slo_telemetry.jsonl";
  std::remove(path.c_str());

  StreamServerConfig sc;
  sc.slo.enabled = true;
  sc.slo.telemetry_period = std::chrono::milliseconds(2);
  sc.slo.telemetry_jsonl = path;
  StreamServer server(system, sc);
  (void)server.serve_sequences(streams(1, 4, 5400));

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::size_t lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ++lines;
    const std::optional<obs::json::Value> doc = obs::json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->find("t_ns"), nullptr);
    ASSERT_NE(doc->find("counters"), nullptr);
    // The per-stream counters the SLO rules watch are in every sample.
    EXPECT_NE(doc->find("counters")->find("runtime.stream0.frames"), nullptr);
  }
  EXPECT_GE(lines, 1u);  // stop() guarantees at least the final sample
  std::remove(path.c_str());
}

TEST(StreamSlo, DisabledMonitoringStillCountsLatencyAndFrames) {
  const core::SystemModels models = core::build_system_models(tiny());
  const core::AdaptiveSystem system(models, control_only());

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const std::uint64_t frames_before =
      registry.counter("runtime.stream0.frames").value();
  const std::uint64_t latency_before =
      registry.histogram("runtime.frame.latency_ns").count();

  StreamServer server(system, {});  // slo.enabled defaults to false
  const std::vector<StreamResult> results =
      server.serve_sequences(streams(1, 3, 5500));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].health, obs::HealthState::Healthy);
  EXPECT_TRUE(results[0].health_transitions.empty());

  const std::uint64_t served = results[0].report.frames.size();
  EXPECT_EQ(registry.counter("runtime.stream0.frames").value() - frames_before,
            served);
  EXPECT_GE(registry.histogram("runtime.frame.latency_ns").count() -
                latency_before,
            served);
}

}  // namespace
}  // namespace avd::runtime
