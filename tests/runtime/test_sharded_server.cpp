// ShardedServer: deterministic placement, bit-identical per-stream results
// through the sharded + batched data plane, shard-labeled telemetry whose
// rollup marginals reconcile with the per-shard leaves, and the single
// fleet ops surface on the front door.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "avd/obs/metrics.hpp"
#include "avd/obs/ops_server.hpp"
#include "avd/runtime/sharded_server.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::runtime {
namespace {

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

std::vector<data::DriveSequence> drives(int n, int frames_per_segment) {
  std::vector<data::DriveSequence> seqs;
  for (int i = 0; i < n; ++i) {
    data::SequenceSpec spec =
        data::DriveSequence::canonical_drive({240, 136}, frames_per_segment);
    spec.seed = 4040 + static_cast<std::uint64_t>(i);
    seqs.emplace_back(spec);
  }
  return seqs;
}

/// Sum of a prometheus scrape's values for one base name, split into the
/// per-shard marginals (exactly one label, "shard") and the two-label
/// shard x stream leaves, keyed by shard value.
struct ShardSeries {
  std::map<std::string, double> marginal;  ///< shard -> marginal value
  std::map<std::string, double> leaf_sum;  ///< shard -> sum of its leaves
};

void fold_series(ShardSeries& out, const std::string& series,
                 const std::string& base, double value) {
  const auto parsed = obs::parse_labeled_name(series);
  if (!parsed || parsed->base != base) return;
  std::string shard, stream;
  for (const auto& [k, v] : parsed->labels) {
    if (k == "shard") shard = v;
    if (k == "stream") stream = v;
  }
  if (shard.empty()) return;
  if (parsed->labels.size() == 1)
    out.marginal[shard] += value;
  else if (parsed->labels.size() == 2 && !stream.empty())
    out.leaf_sum[shard] += value;
}

/// Shard series of `base` (a raw dotted registry name) in a snapshot.
ShardSeries collect_shard_series(const obs::MetricsSnapshot& snap,
                                 const std::string& base) {
  ShardSeries out;
  for (const auto& [name, v] : snap.counters)
    fold_series(out, name, base, static_cast<double>(v));
  return out;
}

/// Shard series of `base` (the sanitized Prometheus family name, e.g.
/// "runtime_frames") in a /metricsz scrape body.
ShardSeries collect_shard_series(const std::string& prometheus,
                                 const std::string& base) {
  ShardSeries out;
  std::istringstream lines(prometheus);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    fold_series(out, line.substr(0, space), base,
                std::stod(line.substr(space + 1)));
  }
  return out;
}

TEST(ShardedServer, PlacementIsStableHashWithClampedOverrides) {
  // The hash is a pure function of the bytes — pin two reference values so
  // an accidental reseed/reorder of the FNV constants cannot slip through.
  EXPECT_EQ(stable_stream_hash(""), 14695981039346656037ull);
  EXPECT_EQ(stable_stream_hash("s0"), stable_stream_hash("s0"));
  EXPECT_NE(stable_stream_hash("s0"), stable_stream_hash("s1"));

  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystem system(models, {});

  ShardedServerConfig fc;
  fc.shards = 4;
  fc.assign_override = {{"pinned", 2}, {"wild", 99}, {"negative", -5}};
  ShardedServer front(system, fc);

  for (const std::string name : {"s0", "s1", "cam-front", "cam-rear"}) {
    const int expected =
        static_cast<int>(stable_stream_hash(name) % 4ull);
    EXPECT_EQ(front.shard_of(name), expected) << name;
  }
  EXPECT_EQ(front.shard_of("pinned"), 2);
  EXPECT_EQ(front.shard_of("wild"), 3);      // clamped into range
  EXPECT_EQ(front.shard_of("negative"), 0);  // clamped into range

  // A second front door with the same config places identically.
  ShardedServer front2(system, fc);
  for (const std::string name : {"s0", "s1", "pinned", "wild"})
    EXPECT_EQ(front.shard_of(name), front2.shard_of(name)) << name;
}

// The tentpole guarantee extended across shards: every stream's report from
// the sharded front door — with cross-stream batching inside each shard and
// a shared scan pool — is bit-identical to the sequential run(), and the
// scatter restores input order whatever the hash placed where.
TEST(ShardedServer, ShardedBatchedServeMatchesSequentialExactly) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  ThreadPool pool(4);
  cfg.sliding.pool = &pool;
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = drives(4, 4);

  ShardedServerConfig fc;
  fc.shards = 2;
  // Exercise both placement paths: one stream pinned, the rest hashed.
  fc.assign_override = {{"s1", 0}};
  fc.shard.detect_workers = 2;
  fc.shard.queue_capacity = 4;
  fc.shard.scan_pool = &pool;
  fc.shard.cross_stream_batching = true;
  fc.shard.detect_batch_max = 4;
  ShardedServer front(system, fc);

  const std::vector<StreamResult> results = front.serve_sequences(streams);
  ASSERT_EQ(results.size(), streams.size());

  const std::vector<int> assignment = front.last_assignment();
  ASSERT_EQ(assignment.size(), streams.size());
  EXPECT_EQ(assignment[1], 0);  // the override stuck
  for (std::size_t s = 0; s < streams.size(); ++s)
    EXPECT_EQ(assignment[s], front.shard_of("s" + std::to_string(s)));

  core::AdaptiveSystemConfig seq_cfg = cfg;
  seq_cfg.sliding.pool = nullptr;  // strictly single-threaded oracle
  core::AdaptiveSystem sequential(models, seq_cfg);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    EXPECT_EQ(results[s].stream, static_cast<int>(s));
    EXPECT_EQ(results[s].backpressure_drops, 0u);
    const core::AdaptiveRunReport oracle = sequential.run(streams[s]);
    ASSERT_EQ(results[s].report.frames.size(), oracle.frames.size());
    for (std::size_t i = 0; i < oracle.frames.size(); ++i) {
      const auto& a = results[s].report.frames[i];
      const auto& b = oracle.frames[i];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.light_level, b.light_level);
      EXPECT_EQ(a.active_config, b.active_config);
      EXPECT_EQ(a.vehicle_match.true_positives, b.vehicle_match.true_positives)
          << "stream " << s << " frame " << i;
      EXPECT_EQ(a.vehicle_match.false_positives,
                b.vehicle_match.false_positives)
          << "stream " << s << " frame " << i;
      EXPECT_EQ(a.vehicle_match.false_negatives,
                b.vehicle_match.false_negatives)
          << "stream " << s << " frame " << i;
    }
  }
}

// Telemetry reconciliation: after a sharded serve, rollup() has folded the
// shard= x stream= leaves so that each per-shard marginal equals the sum of
// that shard's own leaves. (Compared leaf-wise, not against the unlabeled
// base: the base also folds stream=-only series from other tests sharing
// the global registry.)
TEST(ShardedServer, RollupShardMarginalsEqualLeafSums) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystem system(models, {});

  ShardedServerConfig fc;
  fc.shards = 3;
  fc.shard.detect_workers = 1;
  ShardedServer front(system, fc);
  const std::vector<StreamResult> results =
      front.serve_sequences(drives(6, 3));
  ASSERT_EQ(results.size(), 6u);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const ShardSeries frames =
      collect_shard_series(registry.snapshot(), "runtime.frames");
  // Every shard that served streams has leaves, a marginal, and they agree.
  ASSERT_FALSE(frames.leaf_sum.empty());
  for (const auto& [shard, leaves] : frames.leaf_sum) {
    const auto it = frames.marginal.find(shard);
    ASSERT_NE(it, frames.marginal.end()) << "no marginal for shard " << shard;
    EXPECT_DOUBLE_EQ(it->second, leaves) << "shard " << shard;
  }
  // And a second rollup must not double anything.
  registry.rollup();
  const ShardSeries again =
      collect_shard_series(registry.snapshot(), "runtime.frames");
  EXPECT_EQ(again.marginal, frames.marginal);
  EXPECT_EQ(again.leaf_sum, frames.leaf_sum);
}

// The fleet ops surface: ONE front-door listener answers /metricsz with
// shard=-labeled series whose marginals reconcile against the same scrape's
// leaves, /healthz with the fleet worst-of, /statusz with the topology.
TEST(ShardedServer, FrontDoorServesFleetMetricsHealthAndStatus) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystem system(models, {});

  ShardedServerConfig fc;
  fc.shards = 2;
  fc.shard.detect_workers = 1;
  fc.ops_enabled = true;
  fc.ops.port = 0;  // ephemeral
  ShardedServer front(system, fc);
  ASSERT_NE(front.ops_server(), nullptr);
  const std::uint16_t port = front.ops_server()->port();
  ASSERT_NE(port, 0);

  const std::vector<StreamResult> results =
      front.serve_sequences(drives(4, 3));
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(front.fleet_health(), obs::HealthState::Healthy);

  // /metricsz: the ISSUE acceptance check — shard= series are exported and
  // the scrape's own rollup reconciles (marginal == sum of per-shard leaves).
  const auto metrics = obs::http_get(port, "/metricsz");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("shard=\"0\""), std::string::npos);
  EXPECT_NE(metrics->body.find("shard=\"1\""), std::string::npos);
  const ShardSeries frames =
      collect_shard_series(metrics->body, "runtime_frames");
  ASSERT_FALSE(frames.leaf_sum.empty());
  for (const auto& [shard, leaves] : frames.leaf_sum) {
    const auto it = frames.marginal.find(shard);
    ASSERT_NE(it, frames.marginal.end()) << "no marginal for shard " << shard;
    EXPECT_DOUBLE_EQ(it->second, leaves) << "shard " << shard;
  }

  const auto metrics_json = obs::http_get(port, "/metricsz.json");
  ASSERT_TRUE(metrics_json.has_value());
  EXPECT_EQ(metrics_json->status, 200);
  EXPECT_NE(metrics_json->body.find("runtime.frames"), std::string::npos);

  // /healthz: healthy fleet -> 200, per-shard stream rows, fleet verdict.
  const auto healthz = obs::http_get(port, "/healthz");
  ASSERT_TRUE(healthz.has_value());
  EXPECT_EQ(healthz->status, 200);
  EXPECT_NE(healthz->body.find("\"fleet\":\"HEALTHY\""), std::string::npos);
  EXPECT_NE(healthz->body.find("\"shard\":0"), std::string::npos);
  EXPECT_NE(healthz->body.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(healthz->body.find("\"stream\":\"s0\""), std::string::npos);

  // /statusz: topology + serve counter.
  const auto statusz = obs::http_get(port, "/statusz");
  ASSERT_TRUE(statusz.has_value());
  EXPECT_EQ(statusz->status, 200);
  EXPECT_NE(statusz->body.find("sharded-front-door"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"shards\":2"), std::string::npos);
  EXPECT_NE(statusz->body.find("\"serves\":1"), std::string::npos);
}

}  // namespace
}  // namespace avd::runtime
