// StreamServer: the tentpole guarantee — per-stream results from the
// concurrent runtime are bit-identical to the sequential
// AdaptiveSystem::run() path — plus backpressure accounting and metrics.
#include <gtest/gtest.h>

#include <vector>

#include "avd/runtime/fault_injection.hpp"
#include "avd/runtime/stream_server.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::runtime {
namespace {

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

/// The four scripted drives served throughout this file: same shape,
/// different seeds → different scenes, reconfig times, detections.
std::vector<data::DriveSequence> four_streams(int frames_per_segment,
                                              bool with_tunnel = true) {
  std::vector<data::DriveSequence> seqs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    data::SequenceSpec spec =
        with_tunnel ? data::DriveSequence::canonical_drive({240, 136},
                                                           frames_per_segment)
                    : data::SequenceSpec{};
    if (!with_tunnel) {
      spec.frame_size = {240, 136};
      spec.segments = {{data::LightingCondition::Day, frames_per_segment},
                       {data::LightingCondition::Dark, frames_per_segment}};
    }
    spec.seed = 2024 + i;
    seqs.emplace_back(spec);
  }
  return seqs;
}

void expect_frames_identical(const core::AdaptiveFrameReport& a,
                             const core::AdaptiveFrameReport& b,
                             const std::string& where) {
  EXPECT_EQ(a.index, b.index) << where;
  EXPECT_EQ(a.light_level, b.light_level) << where;  // bit-exact double
  EXPECT_EQ(a.sensed, b.sensed) << where;
  EXPECT_EQ(a.active_config, b.active_config) << where;
  EXPECT_EQ(a.vehicle_processed, b.vehicle_processed) << where;
  EXPECT_EQ(a.pedestrian_processed, b.pedestrian_processed) << where;
  EXPECT_EQ(a.reconfig_triggered, b.reconfig_triggered) << where;
  EXPECT_EQ(a.vehicles_truth, b.vehicles_truth) << where;
  EXPECT_EQ(a.animals_truth, b.animals_truth) << where;
  EXPECT_EQ(a.vehicle_match.true_positives, b.vehicle_match.true_positives)
      << where;
  EXPECT_EQ(a.vehicle_match.false_negatives, b.vehicle_match.false_negatives)
      << where;
  EXPECT_EQ(a.vehicle_match.false_positives, b.vehicle_match.false_positives)
      << where;
  EXPECT_EQ(a.animal_match.true_positives, b.animal_match.true_positives)
      << where;
  EXPECT_EQ(a.animal_match.false_negatives, b.animal_match.false_negatives)
      << where;
  EXPECT_EQ(a.animal_match.false_positives, b.animal_match.false_positives)
      << where;
}

void expect_reports_identical(const core::AdaptiveRunReport& a,
                              const core::AdaptiveRunReport& b,
                              const std::string& where) {
  ASSERT_EQ(a.frames.size(), b.frames.size()) << where;
  for (std::size_t i = 0; i < a.frames.size(); ++i)
    expect_frames_identical(a.frames[i], b.frames[i],
                            where + " frame " + std::to_string(i));
  ASSERT_EQ(a.reconfigs.size(), b.reconfigs.size()) << where;
  for (std::size_t i = 0; i < a.reconfigs.size(); ++i) {
    EXPECT_EQ(a.reconfigs[i].config_name, b.reconfigs[i].config_name) << where;
    EXPECT_EQ(a.reconfigs[i].start.ps, b.reconfigs[i].start.ps) << where;
    EXPECT_EQ(a.reconfigs[i].end.ps, b.reconfigs[i].end.ps) << where;
    EXPECT_EQ(a.reconfigs[i].transfer.bytes, b.reconfigs[i].transfer.bytes)
        << where;
  }
  // The control-plane event logs must line up event for event: simulated
  // timestamps, sources, messages. events() returns a locked snapshot, so
  // take it once per log rather than per access.
  const std::vector<soc::Event> a_events = a.log.events();
  const std::vector<soc::Event> b_events = b.log.events();
  ASSERT_EQ(a_events.size(), b_events.size()) << where;
  for (std::size_t i = 0; i < a_events.size(); ++i) {
    EXPECT_EQ(a_events[i].time.ps, b_events[i].time.ps) << where;
    EXPECT_EQ(a_events[i].source, b_events[i].source) << where;
    EXPECT_EQ(a_events[i].message, b_events[i].message) << where;
  }
}

// The ISSUE acceptance test: 4 streams × 4 detect workers, with detection
// enabled, must reproduce the sequential run() per stream bit for bit.
TEST(StreamServer, FourStreamsFourWorkersMatchSequentialExactly) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(6);

  StreamServerConfig sc;
  sc.ingest_workers = 2;
  sc.control_workers = 2;
  sc.detect_workers = 4;
  sc.queue_capacity = 4;  // small queues → real contention and blocking
  StreamServer server(system, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  ASSERT_EQ(results.size(), streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    const core::AdaptiveRunReport sequential = system.run(streams[s]);
    EXPECT_EQ(results[s].stream, static_cast<int>(s));
    EXPECT_EQ(results[s].backpressure_drops, 0u);
    expect_reports_identical(results[s].report, sequential,
                             "stream " + std::to_string(s));
  }
}

// One ThreadPool shared between the detect stage (scan_pool) and the
// sliding-window scanner (sliding.pool): frame-level and scan-level
// parallelism nest on the same threads, and every per-stream report still
// matches the sequential single-threaded run bit for bit.
TEST(StreamServer, SharedScanPoolMatchesSequentialExactly) {
  const core::SystemModels models = core::build_system_models(tiny());
  ThreadPool pool(4);
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  cfg.sliding.pool = &pool;
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(4);

  StreamServerConfig sc;
  sc.detect_workers = 3;
  sc.queue_capacity = 4;
  sc.scan_pool = &pool;
  StreamServer server(system, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  core::AdaptiveSystemConfig seq_cfg = cfg;
  seq_cfg.sliding.pool = nullptr;  // fully sequential oracle
  core::AdaptiveSystem sequential(models, seq_cfg);
  ASSERT_EQ(results.size(), streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    EXPECT_EQ(results[s].backpressure_drops, 0u);
    expect_reports_identical(results[s].report, sequential.run(streams[s]),
                             "stream " + std::to_string(s));
  }
}

// Cross-stream detect batching: workers gather frames from every stream
// into one indexed batch on the shared pool. The gather/scatter must be
// invisible in the data plane — per-stream reports bit-identical to the
// sequential oracle, no frame lost, no drops introduced.
TEST(StreamServer, CrossStreamBatchingMatchesSequentialExactly) {
  const core::SystemModels models = core::build_system_models(tiny());
  ThreadPool pool(4);
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  cfg.sliding.pool = &pool;  // scan-level parallelism nests in batch tasks
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(4);

  StreamServerConfig sc;
  sc.detect_workers = 2;  // two batch coordinators racing on the queue
  sc.queue_capacity = 8;  // deep enough that gathers really batch
  sc.scan_pool = &pool;
  sc.cross_stream_batching = true;
  sc.detect_batch_max = 6;
  StreamServer server(system, sc);
  const std::vector<StreamResult> results = server.serve_sequences(streams);

  core::AdaptiveSystemConfig seq_cfg = cfg;
  seq_cfg.sliding.pool = nullptr;  // fully sequential oracle
  core::AdaptiveSystem sequential(models, seq_cfg);
  ASSERT_EQ(results.size(), streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    EXPECT_EQ(results[s].backpressure_drops, 0u);
    expect_reports_identical(results[s].report, sequential.run(streams[s]),
                             "stream " + std::to_string(s));
  }
}

// Batching under the degradation ladder: level-2 coast frames are excluded
// from pool batches and scattered in canonical order behind them. The
// serve must stay deadlock-free with a single coordinator gathering coast
// and scan frames of interleaved streams, deterministic across serves, and
// complete (every frame reported).
TEST(StreamServer, CrossStreamBatchingWithCoastLadderIsDeterministic) {
  const core::SystemModels models = core::build_system_models(tiny());
  ThreadPool pool(3);
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(4);
  FaultPlan plan;
  // Streams 0 and 2 pinned to SkipCoast from frame 2 on: their later
  // frames alternate scan/coast inside the same gathers as streams 1/3.
  plan.faults.push_back({FaultKind::ForceDegrade, 0, 2, 64, 2.0});
  plan.faults.push_back({FaultKind::ForceDegrade, 2, 2, 64, 2.0});

  const auto serve_once = [&] {
    FaultInjector injector(plan);
    StreamServerConfig sc;
    sc.detect_workers = 1;  // one coordinator: worst case for the ledger
    sc.queue_capacity = 8;
    sc.scan_pool = &pool;
    sc.cross_stream_batching = true;
    sc.detect_batch_max = 8;
    sc.fault_injector = &injector;
    StreamServer server(system, sc);
    return server.serve_sequences(streams);
  };
  const std::vector<StreamResult> first = serve_once();
  const std::vector<StreamResult> second = serve_once();

  ASSERT_EQ(first.size(), streams.size());
  for (std::size_t s = 0; s < streams.size(); ++s) {
    ASSERT_EQ(static_cast<int>(first[s].report.frames.size()),
              streams[s].frame_count());
    expect_reports_identical(first[s].report, second[s].report,
                             "serve/serve stream " + std::to_string(s));
  }
  EXPECT_GT(first[0].coasted_frames, 0u);
  EXPECT_GT(first[2].coasted_frames, 0u);
  // Untargeted streams never leave Full and still match the oracle.
  expect_reports_identical(first[1].report, system.run(streams[1]),
                           "stream 1 vs sequential");
  expect_reports_identical(first[3].report, system.run(streams[3]),
                           "stream 3 vs sequential");
}

// Running the server twice must give identical results (no scheduling
// nondeterminism leaks into the data plane).
TEST(StreamServer, RepeatedServesAreIdentical) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;  // control plane only: fast
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(20);
  StreamServerConfig sc;
  sc.detect_workers = 3;
  sc.control_workers = 2;
  StreamServer s1(system, sc), s2(system, sc);
  const auto r1 = s1.serve_sequences(streams);
  const auto r2 = s2.serve_sequences(streams);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t s = 0; s < r1.size(); ++s)
    expect_reports_identical(r1[s].report, r2[s].report,
                             "stream " + std::to_string(s));
}

// Under DropOldest with a starved detect pool, frames overflow — but every
// frame still shows up in the report, dropped ones as vehicle_processed =
// false with the pedestrian engine untouched (the paper's reconfiguration
// drop, generalised to load shedding).
TEST(StreamServer, DropOldestShedsLoadButAccountsEveryFrame) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(15);
  StreamServerConfig sc;
  sc.detect_workers = 1;
  sc.queue_capacity = 2;
  sc.detect_policy = OverflowPolicy::DropOldest;
  sc.simulated_accel_ms = 2.0;  // starve: detect is 2 ms/frame, control ~µs
  StreamServer server(system, sc);
  const auto results = server.serve_sequences(streams);

  std::uint64_t total_drops = 0;
  for (std::size_t s = 0; s < results.size(); ++s) {
    const auto& r = results[s];
    ASSERT_EQ(static_cast<int>(r.report.frames.size()),
              streams[s].frame_count());
    total_drops += r.backpressure_drops;
    const core::AdaptiveRunReport sequential = system.run(streams[s]);
    std::uint64_t seen_drops = 0;
    for (std::size_t i = 0; i < r.report.frames.size(); ++i) {
      const auto& f = r.report.frames[i];
      const auto& sf = sequential.frames[i];
      // Control-plane outputs are never affected by load shedding.
      EXPECT_EQ(f.sensed, sf.sensed);
      EXPECT_EQ(f.active_config, sf.active_config);
      EXPECT_EQ(f.light_level, sf.light_level);
      EXPECT_TRUE(f.pedestrian_processed);  // static partition never stalls
      if (f.vehicle_processed != sf.vehicle_processed) {
        // Shed frame: sequential processed it, the loaded server did not.
        EXPECT_TRUE(sf.vehicle_processed);
        EXPECT_FALSE(f.vehicle_processed);
        ++seen_drops;
      }
    }
    // A backpressure drop that lands on a frame the control plane already
    // dropped (reconfiguration window) flips no flag, so seen_drops may
    // undercount by at most the reconfiguration drops.
    EXPECT_LE(seen_drops, r.backpressure_drops) << "stream " << s;
    EXPECT_LE(r.backpressure_drops - seen_drops,
              static_cast<std::uint64_t>(sequential.dropped_vehicle_frames()))
        << "stream " << s;
  }
  EXPECT_GT(total_drops, 0u) << "expected the starved pool to shed load";
  EXPECT_EQ(server.metrics().detect.dropped(), total_drops);
}

TEST(StreamServer, MetricsCoverEveryFrame) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);

  const std::vector<data::DriveSequence> streams = four_streams(10);
  int total_frames = 0;
  for (const auto& s : streams) total_frames += s.frame_count();

  StreamServerConfig sc;
  sc.detect_workers = 2;
  StreamServer server(system, sc);
  const auto results = server.serve_sequences(streams);
  ASSERT_EQ(results.size(), 4u);

  const RuntimeMetrics& m = server.metrics();
  const auto n = static_cast<std::uint64_t>(total_frames);
  EXPECT_EQ(m.ingest.processed(), n);
  EXPECT_EQ(m.control.processed(), n);
  EXPECT_EQ(m.detect.processed() + m.detect.dropped(), n);
  EXPECT_EQ(m.report.processed(), n);
  EXPECT_GT(m.detect.latency().count(), 0u);
  EXPECT_GT(m.control.snapshot().p95_ns, 0u);

  // Worker lifecycle events were recorded concurrently into the shared log.
  const soc::EventLog& log = server.server_log();
  EXPECT_GE(log.size(), 8u);  // starts + dones for every pool at minimum
  EXPECT_FALSE(log.from("runtime/detect").empty());
  EXPECT_FALSE(log.from("runtime/server").empty());
}

TEST(StreamServer, EmptyAndSingleFrameStreams) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);

  data::SequenceSpec one;
  one.frame_size = {240, 136};
  one.segments = {{data::LightingCondition::Day, 1}};
  StreamServer server(system, {});
  const auto results =
      server.serve_sequences({data::DriveSequence(one)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].report.frames.size(), 1u);

  StreamServer empty_server(system, {});
  EXPECT_TRUE(empty_server.serve({}).empty());
}

TEST(SequenceFrameSource, AdaptsSequencesUnchanged) {
  data::SequenceSpec spec;
  spec.frame_size = {240, 136};
  spec.segments = {{data::LightingCondition::Day, 5}};
  const data::DriveSequence seq(spec);
  SequenceFrameSource source{data::DriveSequence(spec)};
  EXPECT_EQ(source.frame_count(), 5);
  for (int i = 0; i < 5; ++i) {
    const auto meta = source.next();
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->light_level, seq.frame(i).light_level);
    EXPECT_EQ(meta->condition, seq.frame(i).condition);
  }
  EXPECT_FALSE(source.next().has_value());
}

}  // namespace
}  // namespace avd::runtime
