// FlightRecorder: bounded per-stream rings, always-parseable JSON bundles
// (config/telemetry embedded verbatim only when valid), and file dumps.
#include "avd/obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "avd/obs/json.hpp"

namespace avd::obs {
namespace {

FrameTrace make_frame(std::uint64_t trace_id, std::int64_t stream) {
  FrameTrace f;
  f.trace_id = trace_id;
  f.stream = stream;
  f.begin_ns = trace_id * 100;
  f.end_ns = trace_id * 100 + 50;
  SpanRecord span;
  span.name = "ingest_frame";
  span.trace_id = trace_id;
  span.begin_ns = f.begin_ns;
  span.end_ns = f.end_ns;
  f.spans = {span};
  return f;
}

HealthTransition make_transition(std::uint64_t t_ns) {
  HealthTransition t;
  t.entity = "stream0";
  t.from = HealthState::Healthy;
  t.to = HealthState::Unhealthy;
  t.t_ns = t_ns;
  t.reason = "frame_deadline=0.80";
  return t;
}

TEST(FlightRecorder, DumpIsOneParseableBundleGroupedByStream) {
  FlightRecorder recorder;
  recorder.set_config_json("{\"streams\":2,\"workers\":4}");
  recorder.record_frame(make_frame(1, 0));
  recorder.record_frame(make_frame(2, 1));
  recorder.record_frame(make_frame(3, 0));
  recorder.record_telemetry_row("{\"t_ns\":10,\"seq\":0}");
  recorder.record_transition(make_transition(42));

  const std::string bundle = recorder.dump("unhealthy: stream0");
  const std::optional<json::Value> doc = json::parse(bundle);
  ASSERT_TRUE(doc.has_value()) << bundle;
  EXPECT_EQ(doc->find("reason")->string, "unhealthy: stream0");
  // Config was valid JSON: embedded verbatim as an object.
  const json::Value* config = doc->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->type, json::Value::Type::Object);
  EXPECT_DOUBLE_EQ(config->find("workers")->number, 4.0);
  // Frames grouped by stream id.
  const json::Value* streams = doc->find("streams");
  ASSERT_NE(streams, nullptr);
  const json::Value* s0 = streams->find("0");
  const json::Value* s1 = streams->find("1");
  ASSERT_NE(s0, nullptr);
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s0->find("frames")->array.size(), 2u);
  EXPECT_EQ(s1->find("frames")->array.size(), 1u);
  EXPECT_DOUBLE_EQ(
      s0->find("frames")->array[0].find("trace_id")->number, 1.0);
  // Telemetry row embedded verbatim; transition carries the full record.
  ASSERT_EQ(doc->find("telemetry")->array.size(), 1u);
  EXPECT_DOUBLE_EQ(doc->find("telemetry")->array[0].find("seq")->number, 0.0);
  const json::Value& t = doc->find("slo_transitions")->array[0];
  EXPECT_EQ(t.find("entity")->string, "stream0");
  EXPECT_EQ(t.find("from")->string, "HEALTHY");
  EXPECT_EQ(t.find("to")->string, "UNHEALTHY");
  EXPECT_DOUBLE_EQ(t.find("t_ns")->number, 42.0);
  EXPECT_EQ(recorder.frames_recorded(), 3u);
}

TEST(FlightRecorder, InvalidConfigAndRowsAreEmbeddedAsStrings) {
  FlightRecorder recorder;
  recorder.set_config_json("streams: 2, not json {");
  recorder.record_telemetry_row("also } not { json");
  const std::string bundle = recorder.dump("manual");
  const std::optional<json::Value> doc = json::parse(bundle);
  // A caller's typo never makes the bundle itself unparseable.
  ASSERT_TRUE(doc.has_value()) << bundle;
  EXPECT_EQ(doc->find("config")->type, json::Value::Type::String);
  EXPECT_EQ(doc->find("config")->string, "streams: 2, not json {");
  EXPECT_EQ(doc->find("telemetry")->array[0].string, "also } not { json");
}

TEST(FlightRecorder, EmptyRecorderStillDumpsValidBundle) {
  FlightRecorder recorder;
  const std::optional<json::Value> doc = json::parse(recorder.dump("manual"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("config")->type, json::Value::Type::Null);
  EXPECT_TRUE(doc->find("streams")->object.empty());
  EXPECT_TRUE(doc->find("telemetry")->array.empty());
  EXPECT_TRUE(doc->find("slo_transitions")->array.empty());
}

TEST(FlightRecorder, RingsEvictOldestPerStream) {
  FlightRecorderConfig config;
  config.max_frames_per_stream = 3;
  config.max_telemetry_rows = 2;
  config.max_transitions = 2;
  FlightRecorder recorder(config);
  for (std::uint64_t i = 1; i <= 6; ++i) recorder.record_frame(make_frame(i, 0));
  recorder.record_frame(make_frame(100, 1));  // other stream: own ring
  for (int i = 0; i < 5; ++i)
    recorder.record_telemetry_row("{\"seq\":" + std::to_string(i) + "}");
  for (std::uint64_t i = 0; i < 5; ++i)
    recorder.record_transition(make_transition(i));

  const std::optional<json::Value> doc = json::parse(recorder.dump("manual"));
  ASSERT_TRUE(doc.has_value());
  const json::Value* frames = doc->find("streams")->find("0")->find("frames");
  ASSERT_EQ(frames->array.size(), 3u);
  // Newest three survive: trace ids 4, 5, 6.
  EXPECT_DOUBLE_EQ(frames->array[0].find("trace_id")->number, 4.0);
  EXPECT_DOUBLE_EQ(frames->array[2].find("trace_id")->number, 6.0);
  EXPECT_EQ(doc->find("streams")->find("1")->find("frames")->array.size(), 1u);
  ASSERT_EQ(doc->find("telemetry")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->find("telemetry")->array[1].find("seq")->number, 4.0);
  ASSERT_EQ(doc->find("slo_transitions")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc->find("slo_transitions")->array[1].find("t_ns")->number,
                   4.0);
  // frames_recorded counts everything ever seen, not just survivors.
  EXPECT_EQ(recorder.frames_recorded(), 7u);
}

TEST(FlightRecorder, DumpToFileWritesTheBundleOrReportsFailure) {
  FlightRecorder recorder;
  recorder.record_frame(make_frame(1, 0));
  const std::string path = testing::TempDir() + "flight_bundle_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(recorder.dump_to_file(path, "manual"));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::optional<json::Value> doc = json::parse(contents);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("reason")->string, "manual");
  std::remove(path.c_str());

  EXPECT_FALSE(recorder.dump_to_file("/nonexistent-dir/bundle.json", "x"));
}

}  // namespace
}  // namespace avd::obs
