// OpsServer: lifecycle, routing, bounds and — scraped over a real socket —
// Prometheus exposition wire conformance.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/ops_server.hpp"

namespace avd::obs {
namespace {

/// Raw client for the shapes http_get cannot produce (non-GET methods,
/// oversized requests). Sends `request` verbatim, returns everything the
/// server answered.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

TEST(OpsServer, StartStopIdempotentOnEphemeralPort) {
  OpsServer server;
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);

  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);  // kernel resolved port 0 to a real one
  EXPECT_TRUE(server.start());  // no-op while running

  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent

  // A stopped server restarts cleanly (new socket, possibly new port).
  ASSERT_TRUE(server.start());
  EXPECT_NE(server.port(), 0);
  server.stop();
}

TEST(OpsServer, BindFailureReturnsFalse) {
  OpsServer first;
  ASSERT_TRUE(first.start());

  OpsServerConfig taken;
  taken.port = first.port();
  OpsServer second(taken);
  EXPECT_FALSE(second.start());
  EXPECT_FALSE(second.running());
}

TEST(OpsServer, RoutesQueryParsingAndStatusCodes) {
  OpsServer server;
  server.handle("/hello", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "hi\n"};
  });
  server.handle("/echo", [](const HttpRequest& req) {
    std::ostringstream os;
    os << req.query_value("a") << '|' << req.query_value("b") << '|'
       << req.query_value("missing", "fallback");
    return HttpResponse{200, "text/plain; charset=utf-8", os.str()};
  });
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("kaput");
  });
  ASSERT_TRUE(server.start());

  const auto hello = http_get(server.port(), "/hello");
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->status, 200);
  EXPECT_EQ(hello->body, "hi\n");

  // %XX and '+' decode; absent keys fall back.
  const auto echo = http_get(server.port(), "/echo?a=1&b=hello%20big+world");
  ASSERT_TRUE(echo.has_value());
  EXPECT_EQ(echo->body, "1|hello big world|fallback");

  // Duplicate keys are first-wins: a repeated param cannot override an
  // earlier clamp-relevant value (even when the repeat is %-encoded).
  const auto dup = http_get(server.port(), "/echo?a=1&a=999&b=x&%61=7");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->body, "1|x|fallback");

  const auto missing = http_get(server.port(), "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  // A throwing handler answers 500 and the pool thread survives to serve
  // the next request.
  const auto boom = http_get(server.port(), "/boom");
  ASSERT_TRUE(boom.has_value());
  EXPECT_EQ(boom->status, 500);
  EXPECT_NE(boom->body.find("kaput"), std::string::npos);
  const auto after = http_get(server.port(), "/hello");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, 200);

  const std::string post =
      raw_request(server.port(),
                  "POST /hello HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                  "Content-Length: 0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);

  EXPECT_GE(server.requests_served(), 5u);
  server.stop();
}

TEST(OpsServer, OversizedRequestGets413) {
  OpsServerConfig config;
  config.max_request_bytes = 256;
  OpsServer server(config);
  server.handle("/x", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok"};
  });
  ASSERT_TRUE(server.start());

  const std::string huge =
      "GET /x HTTP/1.1\r\nX-Pad: " + std::string(1024, 'a') + "\r\n\r\n";
  const std::string answer = raw_request(server.port(), huge);
  EXPECT_NE(answer.find("413"), std::string::npos);
  server.stop();
}

TEST(OpsServer, ConcurrentRequestsAllAnswer) {
  std::atomic<int> handled{0};
  OpsServerConfig config;
  config.handler_threads = 3;
  OpsServer server(config);
  server.handle("/work", [&handled](const HttpRequest&) {
    handled.fetch_add(1);
    return HttpResponse{200, "text/plain; charset=utf-8", "done"};
  });
  ASSERT_TRUE(server.start());

  constexpr int kClients = 12;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &ok] {
      const auto res = http_get(server.port(), "/work");
      if (res.has_value() && res->status == 200 && res->body == "done")
        ok.fetch_add(1);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);
  EXPECT_EQ(handled.load(), kClients);
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

// http_get's timeout is an overall deadline, not a per-recv allowance: a
// handler that never answers must fail the client at ~timeout_ms, not hold
// it for the server's (much larger) recv timeout or forever.
TEST(OpsServer, HttpGetDeadlineBoundsAStalledHandler) {
  OpsServerConfig config;
  config.handler_threads = 2;  // the stalled handler must not wedge others
  OpsServer server(config);
  std::atomic<bool> release{false};
  server.handle("/stall", [&release](const HttpRequest&) {
    for (int i = 0; i < 300 && !release.load(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return HttpResponse{200, "text/plain; charset=utf-8", "finally"};
  });
  server.handle("/ok", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "ok"};
  });
  ASSERT_TRUE(server.start());

  const auto t0 = std::chrono::steady_clock::now();
  const auto res = http_get(server.port(), "/stall", /*timeout_ms=*/300);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(res.has_value());      // gave up, did not wait out the stall
  EXPECT_GE(elapsed.count(), 250);    // ...but did honour the deadline
  EXPECT_LT(elapsed.count(), 1500);   // nowhere near the 3 s handler stall

  // The second pool thread still answers while the first is stalled.
  const auto ok = http_get(server.port(), "/ok", /*timeout_ms=*/2000);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->body, "ok");

  release.store(true);  // let the handler finish so stop() joins promptly
  server.stop();
}

TEST(OpsServer, PrometheusWireConformanceOverRealSocket) {
  // A registry exercising the exposition's edge cases: special double
  // values, a labeled family, and a base name whose HELP line needs \\ and
  // \n escaping.
  MetricsRegistry registry;
  registry.counter("wire.events").inc(7);
  registry.gauge("wire.pos_inf").set(std::numeric_limits<double>::infinity());
  registry.gauge("wire.neg_inf").set(-std::numeric_limits<double>::infinity());
  registry.gauge("wire.nan").set(std::nan(""));
  registry.gauge("wire.weird\nname\\x").set(1.0);
  registry.counter("wire.labeled", {{"stream", "0"}}).inc(3);
  registry.histogram("wire.lat_ns").record_ns(1000);

  OpsServer server;
  server.handle("/metricsz", [&registry](const HttpRequest&) {
    return prometheus_response(registry);
  });
  ASSERT_TRUE(server.start());

  const auto res = http_get(server.port(), "/metricsz");
  server.stop();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->status, 200);
  // The negotiated content type, exactly.
  EXPECT_EQ(res->content_type, kPrometheusContentType);
  const std::string& body = res->body;
  ASSERT_FALSE(body.empty());
  // Exposition format requires the final line to end in a newline.
  EXPECT_EQ(body.back(), '\n');

  // Special values spell +Inf / -Inf / NaN, never inf/nan.
  EXPECT_NE(body.find("wire_pos_inf +Inf\n"), std::string::npos);
  EXPECT_NE(body.find("wire_neg_inf -Inf\n"), std::string::npos);
  EXPECT_NE(body.find("wire_nan NaN\n"), std::string::npos);

  // HELP carries the raw name with backslash and newline escaped.
  EXPECT_NE(body.find("\\\\"), std::string::npos);
  EXPECT_NE(body.find("\\n"), std::string::npos);

  // Labeled series render base{label="value"}.
  EXPECT_NE(body.find("wire_labeled{stream=\"0\"} 3\n"), std::string::npos);

  // The default process-identity series ride along on every scrape.
  EXPECT_NE(body.find("process_uptime_seconds "), std::string::npos);
  EXPECT_NE(body.find("build_info{"), std::string::npos);

  // Re-parse the whole body: every line is a comment or `name{...} value`,
  // each # TYPE is one of the legal kinds, and no line is bare whitespace.
  std::istringstream lines(body);
  std::size_t samples = 0;
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      EXPECT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      EXPECT_FALSE(name.empty()) << line;
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        EXPECT_TRUE(type == "counter" || type == "gauge" ||
                    type == "summary" || type == "untyped")
            << line;
      }
      continue;
    }
    // Sample line: value is the last space-separated token; the name part
    // must start with a legal metric-name character.
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    const std::string value = line.substr(sp + 1);
    EXPECT_FALSE(value.empty()) << line;
    const char c0 = line[0];
    EXPECT_TRUE((c0 >= 'a' && c0 <= 'z') || (c0 >= 'A' && c0 <= 'Z') ||
                c0 == '_' || c0 == ':')
        << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(OpsServer, MetricsJsonResponseParsesStrictly) {
  MetricsRegistry registry;
  registry.counter("j.count").inc(2);
  registry.gauge("j.gauge").set(1.5);

  OpsServer server;
  server.handle("/metricsz.json", [&registry](const HttpRequest&) {
    return metrics_json_response(registry);
  });
  ASSERT_TRUE(server.start());
  const auto res = http_get(server.port(), "/metricsz.json");
  server.stop();

  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->status, 200);
  EXPECT_EQ(res->content_type, "application/json");
  const std::optional<json::Value> doc = json::parse(res->body);
  ASSERT_TRUE(doc.has_value());
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* count = counters->find("j.count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number, 2.0);
}

}  // namespace
}  // namespace avd::obs
