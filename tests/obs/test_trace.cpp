// Tracer / ScopedSpan: enable gating, ring-buffer behaviour, multi-thread
// recording, and the drained record contents.
#include "avd/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace avd::obs {
namespace {

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  {
    ScopedSpan span("work", "test/source");
  }
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, EnabledRecordsCompletedSpans) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ScopedSpan outer("outer", "test/source");
    ScopedSpan inner("inner", "test/source");
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  // Inner destructs first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_STREQ(spans[0].source, "test/source");
  EXPECT_LE(spans[1].begin_ns, spans[0].begin_ns);  // outer started first
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);      // outer ended last
  for (const SpanRecord& s : spans) EXPECT_LE(s.begin_ns, s.end_ns);
}

TEST(Tracer, SpanArmedAtConstructionSurvivesDisable) {
  // A span that began while tracing was on still records if tracing is
  // turned off before it ends — the begin/end pair stays consistent.
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ScopedSpan span("crossing", "test/source");
    tracer.set_enabled(false);
  }
  EXPECT_EQ(tracer.drain().size(), 1u);
}

TEST(Tracer, DrainResetsAndClearDropsCounters) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  { ScopedSpan span("a", "test/source"); }
  tracer.set_enabled(false);
  EXPECT_EQ(tracer.drain().size(), 1u);
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  const std::size_t n = Tracer::kRingCapacity + 100;
  for (std::size_t i = 0; i < n; ++i)
    tracer.record("flood", "test/ring", i, i + 1);
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  // This thread's ring holds exactly kRingCapacity spans, the newest ones.
  std::size_t ring_spans = 0;
  std::uint64_t max_end = 0;
  for (const SpanRecord& s : spans)
    if (std::string_view(s.source) == "test/ring") {
      ++ring_spans;
      max_end = std::max(max_end, s.end_ns);
    }
  EXPECT_EQ(ring_spans, Tracer::kRingCapacity);
  EXPECT_EQ(max_end, n);  // newest record survived
  EXPECT_GE(tracer.dropped(), 100u);
  tracer.clear();
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ThreadsRecordIntoSeparateBuffersWithDistinctIds) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i)
        ScopedSpan span("worker", "test/mt");
    });
  }
  for (std::thread& t : threads) t.join();
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.drain();
  std::size_t mine = 0;
  std::set<int> thread_ids;
  for (const SpanRecord& s : spans)
    if (std::string_view(s.source) == "test/mt") {
      ++mine;
      thread_ids.insert(s.thread);
    }
  EXPECT_EQ(mine, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(thread_ids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Tracer, NowNsIsMonotonic) {
  Tracer& tracer = Tracer::global();
  const std::uint64_t a = tracer.now_ns();
  const std::uint64_t b = tracer.now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace avd::obs
