// SloMonitor: delta-based rule evaluation, hysteresis (worsen fast, recover
// slowly), transitions + callbacks, and the standard stream rule set.
#include "avd/obs/slo.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "avd/obs/metrics.hpp"

namespace avd::obs {
namespace {

TelemetrySample sample_at(
    std::uint64_t t_ns,
    std::vector<std::pair<std::string, std::uint64_t>> counters) {
  TelemetrySample s;
  s.t_ns = t_ns;
  s.metrics.counters = std::move(counters);
  return s;
}

SloRule rate_rule(const char* name, const char* bad, const char* total,
                  double degraded, double unhealthy) {
  SloRule r;
  r.name = name;
  r.bad_counter = bad;
  r.total_counter = total;
  r.degraded_above = degraded;
  r.unhealthy_above = unhealthy;
  return r;
}

TEST(SloMonitor, EvaluatesRatesOnCounterDeltas) {
  SloMonitor monitor("stream0",
                     {rate_rule("miss", "s.bad", "s.total", 0.10, 0.50)});
  // Absolute values are huge but the delta is clean: 5 bad / 100 total = 5 %.
  const TelemetrySample prev =
      sample_at(0, {{"s.bad", 1000}, {"s.total", 50000}});
  const TelemetrySample cur =
      sample_at(100, {{"s.bad", 1005}, {"s.total", 50100}});
  EXPECT_EQ(monitor.observe(prev, cur), HealthState::Healthy);
  const std::vector<SloRuleValue> values = monitor.last_values();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_TRUE(values[0].evaluated);
  EXPECT_DOUBLE_EQ(values[0].value, 0.05);
  EXPECT_EQ(values[0].observed, HealthState::Healthy);
}

TEST(SloMonitor, ThresholdsMapToStates) {
  SloConfig config;
  config.breaches_to_worsen = 1;
  SloMonitor monitor("s", {rate_rule("r", "bad", "total", 0.10, 0.50)},
                     config);
  // 20 % bad -> degraded.
  EXPECT_EQ(monitor.observe(sample_at(0, {{"bad", 0}, {"total", 0}}),
                            sample_at(1, {{"bad", 20}, {"total", 100}})),
            HealthState::Degraded);
  // 80 % bad -> unhealthy (worsening jumps straight there).
  EXPECT_EQ(monitor.observe(sample_at(1, {{"bad", 20}, {"total", 100}}),
                            sample_at(2, {{"bad", 100}, {"total", 200}})),
            HealthState::Unhealthy);
}

TEST(SloMonitor, SmallWindowsAreSkipped) {
  SloRule rule = rate_rule("r", "bad", "total", 0.10, 0.50);
  rule.min_total = 10;
  SloMonitor monitor("s", {rule});
  // Only 3 frames this window: not enough evidence, stays healthy even
  // though 100 % of them were bad.
  EXPECT_EQ(monitor.observe(sample_at(0, {{"bad", 0}, {"total", 0}}),
                            sample_at(1, {{"bad", 3}, {"total", 3}})),
            HealthState::Healthy);
  ASSERT_EQ(monitor.last_values().size(), 1u);
  EXPECT_FALSE(monitor.last_values()[0].evaluated);
}

TEST(SloMonitor, AbsoluteRuleUsesBareDelta) {
  SloRule rule;
  rule.name = "drops";
  rule.bad_counter = "dropped";
  rule.degraded_above = 1.0;   // > 1 drop per window
  rule.unhealthy_above = 5.0;  // > 5 drops per window
  SloMonitor monitor("s", {rule});
  EXPECT_EQ(monitor.observe(sample_at(0, {{"dropped", 7}}),
                            sample_at(1, {{"dropped", 8}})),
            HealthState::Healthy);
  EXPECT_EQ(monitor.observe(sample_at(1, {{"dropped", 8}}),
                            sample_at(2, {{"dropped", 11}})),
            HealthState::Degraded);
}

TEST(SloMonitor, HysteresisWorsensAfterNBreaches) {
  SloConfig config;
  config.breaches_to_worsen = 3;
  SloMonitor monitor("s", {rate_rule("r", "bad", "total", 0.10, 0.50)},
                     config);
  const auto breach = [&](std::uint64_t i) {
    return monitor.observe(
        sample_at(i, {{"bad", 20 * i}, {"total", 100 * i}}),
        sample_at(i + 1, {{"bad", 20 * (i + 1)}, {"total", 100 * (i + 1)}}));
  };
  EXPECT_EQ(breach(1), HealthState::Healthy);  // 1st breach: not yet
  EXPECT_EQ(breach(2), HealthState::Healthy);  // 2nd breach: not yet
  EXPECT_EQ(breach(3), HealthState::Degraded); // 3rd consecutive: worsen
}

TEST(SloMonitor, RecoveryStepsOneLevelPerClearStreak) {
  SloConfig config;
  config.breaches_to_worsen = 1;
  config.clears_to_recover = 2;
  SloMonitor monitor("s", {rate_rule("r", "bad", "total", 0.10, 0.50)},
                     config);
  // Jump to unhealthy.
  EXPECT_EQ(monitor.observe(sample_at(0, {{"bad", 0}, {"total", 0}}),
                            sample_at(1, {{"bad", 80}, {"total", 100}})),
            HealthState::Unhealthy);
  // Clean windows: recovery needs 2 in a row, and steps one level at a time.
  const auto clean = [&](std::uint64_t i) {
    return monitor.observe(
        sample_at(i, {{"bad", 80}, {"total", 100 * i}}),
        sample_at(i + 1, {{"bad", 80}, {"total", 100 * (i + 1)}}));
  };
  EXPECT_EQ(clean(2), HealthState::Unhealthy);
  EXPECT_EQ(clean(3), HealthState::Degraded);   // unhealthy -> degraded
  EXPECT_EQ(clean(4), HealthState::Degraded);
  EXPECT_EQ(clean(5), HealthState::Healthy);    // degraded -> healthy
}

TEST(SloMonitor, TransitionsRecordedAndCallbackFires) {
  SloConfig config;
  config.breaches_to_worsen = 1;
  config.clears_to_recover = 1;
  SloMonitor monitor("stream3", {rate_rule("r", "bad", "total", 0.10, 0.50)},
                     config);
  std::vector<HealthTransition> seen;
  monitor.set_callback(
      [&seen](const HealthTransition& t) { seen.push_back(t); });

  monitor.observe(sample_at(0, {{"bad", 0}, {"total", 0}}),
                  sample_at(10, {{"bad", 30}, {"total", 100}}));
  monitor.observe(sample_at(10, {{"bad", 30}, {"total", 100}}),
                  sample_at(20, {{"bad", 30}, {"total", 200}}));

  const std::vector<HealthTransition> transitions = monitor.transitions();
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].entity, "stream3");
  EXPECT_EQ(transitions[0].from, HealthState::Healthy);
  EXPECT_EQ(transitions[0].to, HealthState::Degraded);
  EXPECT_EQ(transitions[0].t_ns, 10u);
  EXPECT_NE(transitions[0].reason.find("r="), std::string::npos);
  EXPECT_EQ(transitions[1].to, HealthState::Healthy);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].to, HealthState::Degraded);
  EXPECT_EQ(seen[1].to, HealthState::Healthy);
}

TEST(SloMonitor, WorstRuleWins) {
  SloMonitor monitor("s", {rate_rule("a", "a.bad", "total", 0.10, 0.50),
                           rate_rule("b", "b.bad", "total", 0.10, 0.50)});
  // Rule a healthy, rule b unhealthy -> unhealthy overall.
  EXPECT_EQ(
      monitor.observe(
          sample_at(0, {{"a.bad", 0}, {"b.bad", 0}, {"total", 0}}),
          sample_at(1, {{"a.bad", 1}, {"b.bad", 90}, {"total", 100}})),
      HealthState::Unhealthy);
}

TEST(StandardStreamRules, CoverDeadlineDropsAndReconfigLoss) {
  const std::vector<SloRule> rules = standard_stream_rules("runtime.stream2");
  ASSERT_EQ(rules.size(), 3u);
  EXPECT_EQ(rules[0].name, "frame_deadline");
  EXPECT_EQ(rules[0].bad_counter, "runtime.stream2.deadline_miss");
  EXPECT_EQ(rules[0].total_counter, "runtime.stream2.frames");
  EXPECT_EQ(rules[1].name, "queue_drops");
  EXPECT_EQ(rules[1].bad_counter, "runtime.stream2.backpressure_drops");
  EXPECT_EQ(rules[2].name, "reconfig_frame_loss");
  EXPECT_EQ(rules[2].bad_counter, "runtime.stream2.reconfig_drops");
  EXPECT_EQ(rules[2].total_counter, "runtime.stream2.reconfigs");
  // The paper's one-frame-per-reconfiguration contract: 1 lost frame per
  // window is fine, 2 is degraded, 3 is unhealthy.
  SloMonitor monitor("s", {rules[2]});
  EXPECT_EQ(monitor.observe(
                sample_at(0, {{"runtime.stream2.reconfig_drops", 0},
                              {"runtime.stream2.reconfigs", 0}}),
                sample_at(1, {{"runtime.stream2.reconfig_drops", 1},
                              {"runtime.stream2.reconfigs", 1}})),
            HealthState::Healthy);
  SloConfig fast;
  fast.breaches_to_worsen = 1;
  SloMonitor monitor2("s", {rules[2]}, fast);
  EXPECT_EQ(monitor2.observe(
                sample_at(0, {{"runtime.stream2.reconfig_drops", 0},
                              {"runtime.stream2.reconfigs", 0}}),
                sample_at(1, {{"runtime.stream2.reconfig_drops", 2},
                              {"runtime.stream2.reconfigs", 1}})),
            HealthState::Degraded);
}

TEST(StandardStreamRules, LabeledFormTargetsTheStreamSeries) {
  const std::vector<SloRule> rules = standard_stream_rules_labeled(2);
  const std::vector<SloRule> prefixed = standard_stream_rules("runtime");
  ASSERT_EQ(rules.size(), prefixed.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].name, prefixed[i].name);
    // Each counter is the prefix rule's counter with the stream label
    // appended — exactly what the StreamServer publishes per stream.
    EXPECT_EQ(rules[i].bad_counter,
              labeled_name(prefixed[i].bad_counter, {{"stream", "2"}}));
    if (prefixed[i].total_counter.empty()) {
      EXPECT_TRUE(rules[i].total_counter.empty());
    } else {
      EXPECT_EQ(rules[i].total_counter,
                labeled_name(prefixed[i].total_counter, {{"stream", "2"}}));
    }
  }
  // And a monitor over them only reacts to that stream's series.
  SloConfig fast;
  fast.breaches_to_worsen = 1;
  SloMonitor monitor("stream2", {rules[0]}, fast);
  EXPECT_EQ(
      monitor.observe(
          sample_at(0, {{"runtime.deadline_miss{stream=\"2\"}", 0},
                        {"runtime.frames{stream=\"2\"}", 0}}),
          sample_at(1, {{"runtime.deadline_miss{stream=\"2\"}", 80},
                        {"runtime.frames{stream=\"2\"}", 100}})),
      HealthState::Unhealthy);
}

TEST(HealthState, WorstOfIsFleetRollup) {
  const HealthState h = HealthState::Healthy;
  const HealthState d = HealthState::Degraded;
  const HealthState u = HealthState::Unhealthy;
  EXPECT_EQ(worst_of({}), HealthState::Healthy);
  const std::vector<HealthState> all_healthy{h, h, h};
  EXPECT_EQ(worst_of(all_healthy), HealthState::Healthy);
  const std::vector<HealthState> one_degraded{h, d, h};
  EXPECT_EQ(worst_of(one_degraded), HealthState::Degraded);
  const std::vector<HealthState> one_unhealthy{h, d, u, h};
  EXPECT_EQ(worst_of(one_unhealthy), HealthState::Unhealthy);
}

TEST(HealthState, ToStringNames) {
  EXPECT_STREQ(to_string(HealthState::Healthy), "HEALTHY");
  EXPECT_STREQ(to_string(HealthState::Degraded), "DEGRADED");
  EXPECT_STREQ(to_string(HealthState::Unhealthy), "UNHEALTHY");
}

}  // namespace
}  // namespace avd::obs
