// TelemetryExporter: sampling semantics, ring bounds, JSONL sink validity
// (through the obs::json parser), on_sample windows, and shutdown behaviour.
#include "avd/obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/json.hpp"

namespace avd::obs {
namespace {

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem;
}

TEST(TelemetryExporter, SampleNowCapturesRegistryState) {
  MetricsRegistry reg;
  reg.counter("frames").inc(5);
  TelemetryExporter exporter(reg);
  exporter.sample_now();
  reg.counter("frames").inc(2);
  exporter.sample_now();

  const std::vector<TelemetrySample> samples = exporter.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].metrics.counter("frames"), 5u);
  EXPECT_EQ(samples[1].metrics.counter("frames"), 7u);
  EXPECT_LE(samples[0].t_ns, samples[1].t_ns);
  EXPECT_EQ(exporter.total_samples(), 2u);
}

TEST(TelemetryExporter, RingEvictsOldestButTotalKeepsCounting) {
  MetricsRegistry reg;
  Counter& c = reg.counter("tick");
  TelemetryConfig config;
  config.ring_capacity = 3;
  TelemetryExporter exporter(reg, config);
  for (int i = 0; i < 10; ++i) {
    c.inc();
    exporter.sample_now();
  }
  const std::vector<TelemetrySample> samples = exporter.samples();
  ASSERT_EQ(samples.size(), 3u);
  // Newest three survive: tick = 8, 9, 10.
  EXPECT_EQ(samples[0].metrics.counter("tick"), 8u);
  EXPECT_EQ(samples[2].metrics.counter("tick"), 10u);
  EXPECT_EQ(exporter.total_samples(), 10u);
}

TEST(TelemetryExporter, BackgroundThreadSamplesPeriodically) {
  MetricsRegistry reg;
  reg.counter("background").inc();
  TelemetryConfig config;
  config.period = std::chrono::milliseconds(2);
  TelemetryExporter exporter(reg, config);
  EXPECT_FALSE(exporter.running());
  exporter.start();
  EXPECT_TRUE(exporter.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exporter.stop();
  EXPECT_FALSE(exporter.running());
  // ~15 periods elapsed plus the final stop() sample; demand a modest floor
  // so a slow CI machine still passes.
  EXPECT_GE(exporter.total_samples(), 3u);
  // stop() is idempotent, and the final sample means short runs never end
  // up empty.
  exporter.stop();
  EXPECT_FALSE(exporter.samples().empty());
}

TEST(TelemetryExporter, StopWithoutStartStillWorks) {
  MetricsRegistry reg;
  TelemetryExporter exporter(reg);
  exporter.stop();  // no-op
  EXPECT_EQ(exporter.total_samples(), 0u);
}

TEST(TelemetryExporter, JsonlSinkEmitsOneValidObjectPerLine) {
  MetricsRegistry reg;
  reg.counter("rows").inc(1);
  reg.histogram("lat").record_ns(1000);
  const std::string path = temp_path("telemetry_sink.jsonl");
  std::remove(path.c_str());

  TelemetryConfig config;
  config.period = std::chrono::milliseconds(500);  // only explicit samples
  config.jsonl_path = path;
  {
    TelemetryExporter exporter(reg, config);
    exporter.start();
    exporter.sample_now();
    reg.counter("rows").inc(1);
    exporter.sample_now();
    exporter.stop();  // final sample + flush
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  ASSERT_GE(lines.size(), 3u);
  for (const std::string& line : lines) {
    const std::optional<json::Value> doc = json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_NE(doc->find("t_ns"), nullptr);
    ASSERT_NE(doc->find("counters"), nullptr);
    EXPECT_NE(doc->find("histograms"), nullptr);
  }
  // The last line carries the final state.
  const std::optional<json::Value> last = json::parse(lines.back());
  const json::Value* rows = last->find("counters")->find("rows");
  ASSERT_NE(rows, nullptr);
  EXPECT_DOUBLE_EQ(rows->number, 2.0);
  std::remove(path.c_str());
}

TEST(TelemetryExporter, UnopenableSinkThrowsOnStart) {
  MetricsRegistry reg;
  TelemetryConfig config;
  config.jsonl_path = "/nonexistent-dir/telemetry.jsonl";
  TelemetryExporter exporter(reg, config);
  EXPECT_THROW(exporter.start(), std::runtime_error);
  EXPECT_FALSE(exporter.running());
}

TEST(TelemetryExporter, OnSampleSeesPrevAndCurWindows) {
  MetricsRegistry reg;
  Counter& c = reg.counter("windowed");
  struct Window {
    bool has_prev;
    std::uint64_t prev_value;
    std::uint64_t cur_value;
  };
  std::vector<Window> windows;
  TelemetryConfig config;
  config.on_sample = [&windows](const TelemetrySample* prev,
                                const TelemetrySample& cur) {
    windows.push_back({prev != nullptr,
                       prev != nullptr ? prev->metrics.counter("windowed") : 0,
                       cur.metrics.counter("windowed")});
  };
  TelemetryExporter exporter(reg, config);
  c.inc(10);
  exporter.sample_now();
  c.inc(5);
  exporter.sample_now();

  ASSERT_EQ(windows.size(), 2u);
  EXPECT_FALSE(windows[0].has_prev);
  EXPECT_EQ(windows[0].cur_value, 10u);
  EXPECT_TRUE(windows[1].has_prev);
  EXPECT_EQ(windows[1].prev_value, 10u);
  EXPECT_EQ(windows[1].cur_value, 15u);
}

TEST(TelemetrySample, ToJsonParsesAndCarriesTimestamp) {
  MetricsRegistry reg;
  reg.counter("x").inc(3);
  TelemetrySample sample;
  sample.t_ns = 12345;
  sample.seq = 7;
  sample.metrics = reg.snapshot();
  const std::string text = to_json(sample);
  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  ASSERT_NE(doc->find("t_ns"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("t_ns")->number, 12345.0);
  ASSERT_NE(doc->find("seq"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("seq")->number, 7.0);
  EXPECT_DOUBLE_EQ(doc->find("counters")->find("x")->number, 3.0);
}

TEST(TelemetryExporter, SeqIsGaplessAcrossRingEviction) {
  // Ring eviction discards old in-memory samples but must never reorder or
  // duplicate what went to the sink: the JSONL rows' seq values are exactly
  // 0..N-1 in file order, and the surviving ring is the newest suffix.
  MetricsRegistry reg;
  Counter& c = reg.counter("tick");
  const std::string path = temp_path("telemetry_seq.jsonl");
  std::remove(path.c_str());

  TelemetryConfig config;
  config.ring_capacity = 3;  // much smaller than the row count
  config.period = std::chrono::milliseconds(500);  // only explicit samples
  config.jsonl_path = path;
  constexpr int kRows = 12;
  {
    TelemetryExporter exporter(reg, config);
    exporter.start();
    for (int i = 0; i < kRows; ++i) {
      c.inc();
      exporter.sample_now();
    }
    exporter.stop();  // appends one final row (seq == kRows)
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::uint64_t expected_seq = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    const std::optional<json::Value> doc = json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const json::Value* seq = doc->find("seq");
    ASSERT_NE(seq, nullptr);
    EXPECT_DOUBLE_EQ(seq->number, static_cast<double>(expected_seq));
    ++expected_seq;
  }
  // At least the explicit rows plus stop()'s final one; a slow machine may
  // add periodic rows, which must still land gaplessly in order (asserted
  // above for every row).
  EXPECT_GE(expected_seq, static_cast<std::uint64_t>(kRows) + 1);
  std::remove(path.c_str());
}

TEST(TelemetryExporter, RingSurvivorsStayOrderedBySeq) {
  MetricsRegistry reg;
  Counter& c = reg.counter("tick");
  TelemetryConfig config;
  config.ring_capacity = 4;
  TelemetryExporter exporter(reg, config);
  for (int i = 0; i < 11; ++i) {
    c.inc();
    exporter.sample_now();
  }
  const std::vector<TelemetrySample> samples = exporter.samples();
  ASSERT_EQ(samples.size(), 4u);
  // Newest 4 of 11 samples: seq 7..10, strictly increasing, no duplicates.
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_EQ(samples[i].seq, 7u + i);
}

TEST(TelemetryExporter, RollupBeforeSampleFoldsLabeledSeries) {
  MetricsRegistry reg;
  reg.counter("frames", {{"stream", "0"}}).inc(4);
  reg.counter("frames", {{"stream", "1"}}).inc(6);
  TelemetryConfig config;
  config.rollup_before_sample = true;
  TelemetryExporter exporter(reg, config);
  exporter.sample_now();
  const std::vector<TelemetrySample> samples = exporter.samples();
  ASSERT_EQ(samples.size(), 1u);
  // The row carries the per-stream series AND the folded fleet view.
  EXPECT_EQ(samples[0].metrics.counter("frames{stream=\"0\"}"), 4u);
  EXPECT_EQ(samples[0].metrics.counter("frames{stream=\"1\"}"), 6u);
  EXPECT_EQ(samples[0].metrics.counter("frames"), 10u);
}

}  // namespace
}  // namespace avd::obs
