// Counter/Gauge/Histogram semantics, registry identity, and the JSON +
// Prometheus expositions (round-tripped through the obs::json parser).
#include "avd/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "avd/obs/json.hpp"

namespace avd::obs {
namespace {

TEST(Counter, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentAddsAllLand) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(Histogram, LinearBinsAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kLinearBins; ++v) {
    EXPECT_EQ(Histogram::bin_index(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::bin_value(static_cast<int>(v)), v);
  }
}

TEST(Histogram, BinRelativeErrorBounded) {
  // Log-linear promise: the representative value of a bin is within ~7 %
  // of anything that maps into it.
  for (std::uint64_t v : {100ull, 1'000ull, 123'456ull, 7'000'000ull,
                          1'000'000'000ull, 987'654'321'000ull}) {
    const int idx = Histogram::bin_index(v);
    const double rep = static_cast<double>(Histogram::bin_value(idx));
    const double rel = std::abs(rep - static_cast<double>(v)) / static_cast<double>(v);
    EXPECT_LT(rel, 0.07) << "value " << v << " rep " << rep;
  }
}

TEST(Histogram, BinIndexIsMonotonic) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const int idx = Histogram::bin_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, CountSumMeanMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.percentile_ns(0.5), 0u);
  h.record_ns(10);
  h.record_ns(20);
  h.record_ns(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ns(), 60u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 20.0);
  EXPECT_EQ(h.max_ns(), 30u);
  h.record(std::chrono::nanoseconds(-5));  // clamped to 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum_ns(), 60u);
}

TEST(Histogram, PercentilesOrderedAndPlausible) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record_ns(v * 1000);
  const std::uint64_t p50 = h.percentile_ns(0.50);
  const std::uint64_t p95 = h.percentile_ns(0.95);
  const std::uint64_t p99 = h.percentile_ns(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // True p50 = 500µs, p99 = 990µs; allow the ~7 % bin error.
  EXPECT_NEAR(static_cast<double>(p50), 500'000.0, 0.1 * 500'000.0);
  EXPECT_NEAR(static_cast<double>(p99), 990'000.0, 0.1 * 990'000.0);
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.p50_ns, p50);
  EXPECT_EQ(s.p95_ns, p95);
  EXPECT_EQ(s.p99_ns, p99);
  EXPECT_EQ(s.max_ns, 1'000'000u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_ns(), 0u);
  EXPECT_EQ(h.percentile_ns(0.99), 0u);
}

TEST(MetricsRegistry, SameNameSameObject) {
  MetricsRegistry reg;
  Counter& a = reg.counter("frames");
  Counter& b = reg.counter("frames");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Separate namespaces: a gauge named "frames" is a different object.
  Gauge& g = reg.gauge("frames");
  g.set(3.0);
  EXPECT_EQ(reg.counter("frames").value(), 1u);
}

TEST(MetricsRegistry, ResetValuesKeepsReferencesValid) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.inc(7);
  g.set(1.5);
  h.record_ns(100);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // The same references still work after reset.
  c.inc();
  EXPECT_EQ(reg.counter("c").value(), 1u);
}

TEST(MetricsRegistry, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("detect.frames").inc(12);
  reg.gauge("soc.throughput \"quoted\"").set(-3.25);
  Histogram& h = reg.histogram("latency");
  h.record_ns(1000);
  h.record_ns(2000);

  const std::string text = reg.to_json();
  const std::optional<json::Value> doc = json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;
  ASSERT_EQ(doc->type, json::Value::Type::Object);

  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* frames = counters->find("detect.frames");
  ASSERT_NE(frames, nullptr);
  EXPECT_DOUBLE_EQ(frames->number, 12.0);

  const json::Value* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* tp = gauges->find("soc.throughput \"quoted\"");
  ASSERT_NE(tp, nullptr) << "gauge name must be escaped, then round-trip";
  EXPECT_DOUBLE_EQ(tp->number, -3.25);

  const json::Value* hists = doc->find("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* lat = hists->find("latency");
  ASSERT_NE(lat, nullptr);
  const json::Value* count = lat->find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->number, 2.0);
  const json::Value* sum = lat->find("sum_ns");
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->number, 3000.0);
  for (const char* key : {"mean_ns", "p50_ns", "p95_ns", "p99_ns", "max_ns"})
    EXPECT_NE(lat->find(key), nullptr) << key;
}

TEST(MetricsRegistry, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("detect.frames").inc(5);
  reg.gauge("queue-depth").set(2.0);
  reg.histogram("stage.latency").record_ns(500);

  const std::string text = reg.to_prometheus();
  // Names sanitised to [a-zA-Z0-9_:].
  EXPECT_NE(text.find("# TYPE detect_frames counter"), std::string::npos);
  EXPECT_NE(text.find("detect_frames 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stage_latency summary"), std::string::npos);
  EXPECT_NE(text.find("stage_latency{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("stage_latency{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("stage_latency{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("stage_latency_sum 500"), std::string::npos);
  EXPECT_NE(text.find("stage_latency_count 1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsRegistry, PrometheusHelpCarriesRawName) {
  MetricsRegistry reg;
  reg.counter("detect.frames").inc();
  const std::string text = reg.to_prometheus();
  // HELP precedes TYPE precedes the sample, and carries the raw (dotted)
  // name so the sanitisation stays reversible by a human.
  const auto help = text.find("# HELP detect_frames detect.frames\n");
  const auto type = text.find("# TYPE detect_frames counter\n");
  const auto sample = text.find("\ndetect_frames 1\n");
  ASSERT_NE(help, std::string::npos) << text;
  ASSERT_NE(type, std::string::npos) << text;
  ASSERT_NE(sample, std::string::npos) << text;
  EXPECT_LT(help, type);
  EXPECT_LT(type, sample);
}

TEST(MetricsRegistry, PrometheusCollidingNamesGetNumericSuffix) {
  MetricsRegistry reg;
  // "a.b" and "a_b" both sanitise to "a_b" — they must stay distinct series.
  reg.counter("a.b").inc(1);
  reg.counter("a_b").inc(2);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP a_b a.b\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# HELP a_b_2 a_b\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\na_b 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\na_b_2 2\n"), std::string::npos) << text;
}

TEST(MetricsRegistry, PrometheusCollisionSpansSections) {
  MetricsRegistry reg;
  // The exposition namespace is shared across counters, gauges and
  // histogram series (including the implicit _sum/_count).
  reg.counter("x").inc(1);
  reg.gauge("x").set(2.0);
  reg.counter("lat_sum").inc(9);       // collides with histogram "lat"'s _sum
  reg.histogram("lat").record_ns(100);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE x counter\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE x_2 gauge\n"), std::string::npos) << text;
  // Histogram "lat" cannot use the clean name: its _sum would collide with
  // the counter "lat_sum"; it moves to lat_2 wholesale.
  EXPECT_NE(text.find("# TYPE lat_2 summary\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\nlat_2_sum 100\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\nlat_sum 9\n"), std::string::npos) << text;
}

TEST(LabeledName, RendersSortedSanitisedAndEscaped) {
  EXPECT_EQ(labeled_name("runtime.frames", {{"stream", "3"}}),
            "runtime.frames{stream=\"3\"}");
  // Keys sort, so label order never creates a second series.
  EXPECT_EQ(labeled_name("m", {{"stream", "1"}, {"shard", "2"}}),
            labeled_name("m", {{"shard", "2"}, {"stream", "1"}}));
  // Keys sanitise to identifier characters; values escape like Prometheus.
  EXPECT_EQ(labeled_name("m", {{"bad key", "a\"b\\c\nd"}}),
            "m{bad_key=\"a\\\"b\\\\c\\nd\"}");
  // Braces in the base cannot fake a label block.
  EXPECT_EQ(labeled_name("a{b}c", {{"k", "v"}}), "a_b_c{k=\"v\"}");
  EXPECT_EQ(labeled_name("plain", {}), "plain");
}

TEST(LabeledName, ParseIsStrictInverse) {
  const Labels labels{{"shard", "2"}, {"stream", "1"}};
  const std::string flat = labeled_name("runtime.frames", labels);
  const std::optional<ParsedSeriesName> parsed = parse_labeled_name(flat);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, "runtime.frames");
  EXPECT_EQ(parsed->labels, labels);

  // Escaped values round-trip.
  const std::string tricky = labeled_name("m", {{"k", "a\"b\\c\nd"}});
  const std::optional<ParsedSeriesName> t = parse_labeled_name(tricky);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->labels[0].second, "a\"b\\c\nd");

  // Plain names and malformed renderings are not labeled series.
  EXPECT_FALSE(parse_labeled_name("plain").has_value());
  EXPECT_FALSE(parse_labeled_name("m{").has_value());
  EXPECT_FALSE(parse_labeled_name("m{}").has_value());
  EXPECT_FALSE(parse_labeled_name("m{k=\"v\"} ").has_value());
  EXPECT_FALSE(parse_labeled_name("m{k=v}").has_value());
  EXPECT_FALSE(parse_labeled_name("m{k=\"v\",}").has_value());
  EXPECT_FALSE(parse_labeled_name("m{k=\"\\x\"}").has_value());
  EXPECT_FALSE(parse_labeled_name("m{1k=\"v\"}").has_value());
}

TEST(MetricsRegistry, LabeledLookupIsFindOrCreateBySeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("frames", {{"stream", "0"}});
  Counter& b = reg.counter("frames", {{"stream", "0"}});
  Counter& other = reg.counter("frames", {{"stream", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  // The labeled series IS the flat-named series.
  a.inc(3);
  EXPECT_EQ(reg.counter("frames{stream=\"0\"}").value(), 3u);
}

TEST(MetricsRegistry, RollupFoldsLabeledSeriesIntoBase) {
  MetricsRegistry reg;
  reg.counter("frames", {{"stream", "0"}}).inc(4);
  reg.counter("frames", {{"stream", "1"}}).inc(6);
  reg.gauge("depth", {{"stream", "0"}}).set(1.5);
  reg.gauge("depth", {{"stream", "1"}}).set(2.0);
  reg.histogram("lat", {{"stream", "0"}}).record_ns(100);
  reg.histogram("lat", {{"stream", "1"}}).record_ns(300);

  reg.rollup();
  EXPECT_EQ(reg.counter("frames").value(), 10u);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 3.5);
  EXPECT_EQ(reg.histogram("lat").count(), 2u);
  EXPECT_EQ(reg.histogram("lat").sum_ns(), 400u);
  EXPECT_EQ(reg.histogram("lat").max_ns(), 300u);

  // rollup() overwrites, not accumulates: calling it again (after more
  // labeled growth) re-derives the base from the children.
  reg.counter("frames", {{"stream", "0"}}).inc(1);
  reg.rollup();
  reg.rollup();
  EXPECT_EQ(reg.counter("frames").value(), 11u);
  EXPECT_EQ(reg.histogram("lat").count(), 2u);
}

TEST(LabeledName, TwoLabelsSortEscapeAndRoundTrip) {
  // Keys render sorted whatever order the caller passes them in.
  EXPECT_EQ(labeled_name("runtime.frames",
                         {{"stream", "s3"}, {"shard", "0"}}),
            "runtime.frames{shard=\"0\",stream=\"s3\"}");
  // Escaping applies per value, independent of the other label.
  EXPECT_EQ(labeled_name("m", {{"stream", "a\"b"}, {"shard", "c\\d\ne"}}),
            "m{shard=\"c\\\\d\\ne\",stream=\"a\\\"b\"}");
  // Strict inverse with both labels, including escaped values.
  const Labels labels{{"shard", "0"}, {"stream", "s\"3\\x"}};
  const std::optional<ParsedSeriesName> parsed =
      parse_labeled_name(labeled_name("runtime.frames", labels));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, "runtime.frames");
  ASSERT_EQ(parsed->labels.size(), 2u);
  EXPECT_EQ(parsed->labels[0].first, "shard");
  EXPECT_EQ(parsed->labels[0].second, "0");
  EXPECT_EQ(parsed->labels[1].first, "stream");
  EXPECT_EQ(parsed->labels[1].second, "s\"3\\x");
}

TEST(MetricsRegistry, PrometheusRoundTripsTwoLabelSeries) {
  MetricsRegistry reg;
  reg.counter("name", {{"shard", "0"}, {"stream", "s3"}}).inc(7);
  const std::string text = reg.to_prometheus();
  // The exposition line carries exactly the canonical flat rendering, so
  // the flat registry key IS the Prometheus series identity.
  EXPECT_NE(text.find("name{shard=\"0\",stream=\"s3\"} 7\n"),
            std::string::npos);
}

TEST(MetricsRegistry, RollupProducesShardMarginalsAndStaysIdempotent) {
  MetricsRegistry reg;
  // shard= x stream= leaves, the sharded front door's shape.
  reg.counter("frames", {{"shard", "0"}, {"stream", "0"}}).inc(3);
  reg.counter("frames", {{"shard", "0"}, {"stream", "1"}}).inc(4);
  reg.counter("frames", {{"shard", "1"}, {"stream", "2"}}).inc(5);
  reg.gauge("depth", {{"shard", "0"}, {"stream", "0"}}).set(1.0);
  reg.gauge("depth", {{"shard", "1"}, {"stream", "1"}}).set(2.5);
  reg.histogram("lat", {{"shard", "0"}, {"stream", "0"}}).record_ns(100);
  reg.histogram("lat", {{"shard", "1"}, {"stream", "1"}}).record_ns(300);

  reg.rollup();
  // Per-shard marginals (last sorted label dropped)...
  EXPECT_EQ(reg.counter("frames", {{"shard", "0"}}).value(), 7u);
  EXPECT_EQ(reg.counter("frames", {{"shard", "1"}}).value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("depth", {{"shard", "0"}}).value(), 1.0);
  EXPECT_EQ(reg.histogram("lat", {{"shard", "0"}}).count(), 1u);
  // ...and the base equals the sum of the leaves, not leaves + marginals.
  EXPECT_EQ(reg.counter("frames").value(), 12u);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 3.5);
  EXPECT_EQ(reg.histogram("lat").count(), 2u);
  EXPECT_EQ(reg.histogram("lat").sum_ns(), 400u);

  // Idempotence: the /metricsz handler and end-of-serve both fold; a second
  // (and third) rollup must not re-sum the shard marginals into the base.
  reg.rollup();
  reg.rollup();
  EXPECT_EQ(reg.counter("frames").value(), 12u);
  EXPECT_EQ(reg.counter("frames", {{"shard", "0"}}).value(), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge("depth").value(), 3.5);
  EXPECT_EQ(reg.histogram("lat").count(), 2u);

  // New leaf growth re-derives marginals and base alike.
  reg.counter("frames", {{"shard", "0"}, {"stream", "1"}}).inc(1);
  reg.rollup();
  EXPECT_EQ(reg.counter("frames", {{"shard", "0"}}).value(), 8u);
  EXPECT_EQ(reg.counter("frames").value(), 13u);
}

TEST(MetricsRegistry, RollupIdempotentUnderConcurrentScrapes) {
  // Two scrape threads fold repeatedly while writers grow the leaves; after
  // everyone quiesces, one final fold must land exactly on the leaf totals
  // (a double-count would overshoot permanently).
  MetricsRegistry reg;
  Counter& a = reg.counter("rollup.race", {{"shard", "0"}, {"stream", "0"}});
  Counter& b = reg.counter("rollup.race", {{"shard", "1"}, {"stream", "1"}});
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.rollup();
        (void)reg.snapshot();
      }
    });
  for (int t = 0; t < 2; ++t)
    threads.emplace_back([&a, &b] {
      for (int i = 0; i < 1000; ++i) {
        a.inc();
        b.inc();
      }
    });
  for (std::thread& th : threads) th.join();
  reg.rollup();
  EXPECT_EQ(reg.counter("rollup.race").value(), 4000u);
  EXPECT_EQ(reg.counter("rollup.race", {{"shard", "0"}}).value(), 2000u);
  EXPECT_EQ(reg.counter("rollup.race", {{"shard", "1"}}).value(), 2000u);
}

TEST(Histogram, MergeFromAddsBinsCountsAndMax) {
  Histogram a;
  Histogram b;
  a.record_ns(100);
  b.record_ns(200);
  b.record_ns(300);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum_ns(), 600u);
  EXPECT_EQ(a.max_ns(), 300u);
  // Percentiles see the merged distribution.
  EXPECT_GE(a.percentile_ns(0.99), a.percentile_ns(0.01));
}

TEST(MetricsRegistry, PrometheusLabeledSeriesShareOneFamily) {
  MetricsRegistry reg;
  reg.counter("runtime.frames", {{"stream", "0"}}).inc(4);
  reg.counter("runtime.frames", {{"stream", "1"}}).inc(6);
  reg.rollup();
  const std::string text = reg.to_prometheus();
  // One HELP and one TYPE for the whole family (base + both children)...
  EXPECT_EQ(text.find("# HELP runtime_frames runtime.frames\n"),
            text.rfind("# HELP runtime_frames runtime.frames\n"));
  EXPECT_EQ(text.find("# TYPE runtime_frames counter\n"),
            text.rfind("# TYPE runtime_frames counter\n"));
  // ...and three sample lines: the rollup plus the two labeled children.
  EXPECT_NE(text.find("\nruntime_frames 10\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\nruntime_frames{stream=\"0\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\nruntime_frames{stream=\"1\"} 6\n"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistry, PrometheusLabeledHistogramMergesQuantileLabel) {
  MetricsRegistry reg;
  reg.histogram("lat", {{"stream", "0"}}).record_ns(500);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("lat{stream=\"0\",quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_sum{stream=\"0\"} 500"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_count{stream=\"0\"} 1"), std::string::npos)
      << text;
}

TEST(MetricsRegistry, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("m", {{"path", "a\\b \"q\"\nend"}}).inc(1);
  const std::string text = reg.to_prometheus();
  // The exposition re-escapes backslash, quote and newline in label values.
  EXPECT_NE(text.find("m{path=\"a\\\\b \\\"q\\\"\\nend\"} 1"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistry, PrometheusLabeledFamiliesKeepCollisionSuffixes) {
  MetricsRegistry reg;
  // Two distinct raw bases that sanitise identically: the labeled children
  // follow their family's suffixed name.
  reg.counter("a.b", {{"stream", "0"}}).inc(1);
  reg.counter("a_b", {{"stream", "0"}}).inc(2);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("\na_b{stream=\"0\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\na_b_2{stream=\"0\"} 2\n"), std::string::npos)
      << text;
}

TEST(MetricsSnapshot, LookupsAndJson) {
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(1.5);
  reg.histogram("h").record_ns(700);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c"), 3u);
  EXPECT_EQ(snap.counter("missing", 42), 42u);
  EXPECT_DOUBLE_EQ(snap.gauge("g"), 1.5);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 1u);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
  // The free to_json on a snapshot matches the registry's own exposition.
  EXPECT_EQ(to_json(snap), reg.to_json());
}

TEST(MetricsRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace avd::obs
