// Strict JSON parser: acceptance of the full grammar, rejection of the
// malformed inputs that matter for validating emitted traces/metrics.
#include "avd/obs/json.hpp"

#include <gtest/gtest.h>

namespace avd::obs::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse("null")->type, Value::Type::Null);
  EXPECT_TRUE(parse("true")->boolean);
  EXPECT_FALSE(parse("false")->boolean);
  EXPECT_DOUBLE_EQ(parse("0")->number, 0.0);
  EXPECT_DOUBLE_EQ(parse("-42")->number, -42.0);
  EXPECT_DOUBLE_EQ(parse("3.5e2")->number, 350.0);
  EXPECT_DOUBLE_EQ(parse("1.25")->number, 1.25);
  EXPECT_EQ(parse("\"hi\"")->string, "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")")->string, "a\"b");
  EXPECT_EQ(parse(R"("a\\b")")->string, "a\\b");
  EXPECT_EQ(parse(R"("a\/b")")->string, "a/b");
  EXPECT_EQ(parse(R"("\n\t\r\b\f")")->string, "\n\t\r\b\f");
  EXPECT_EQ(parse(R"("A")")->string, "A");
  EXPECT_EQ(parse(R"("é")")->string, "\xc3\xa9");      // é as UTF-8
  EXPECT_EQ(parse(R"("€")")->string, "\xe2\x82\xac");  // €
}

TEST(JsonParse, ArraysAndObjects) {
  const std::optional<Value> arr = parse("[1, [2, 3], {\"k\": 4}]");
  ASSERT_TRUE(arr.has_value());
  ASSERT_EQ(arr->array.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->array[0].number, 1.0);
  ASSERT_EQ(arr->array[1].array.size(), 2u);
  const Value* k = arr->array[2].find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_DOUBLE_EQ(k->number, 4.0);

  const std::optional<Value> obj = parse(R"({"a": {"b": [true]}, "c": null})");
  ASSERT_TRUE(obj.has_value());
  ASSERT_EQ(obj->object.size(), 2u);
  EXPECT_EQ(obj->object[0].first, "a");  // insertion order kept
  EXPECT_EQ(obj->find("a")->find("b")->array[0].boolean, true);
  EXPECT_EQ(obj->find("c")->type, Value::Type::Null);
  EXPECT_EQ(obj->find("missing"), nullptr);

  EXPECT_TRUE(valid("[]"));
  EXPECT_TRUE(valid("{}"));
  EXPECT_TRUE(valid("  { \"x\" : [ ] }  "));
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(valid(""));
  EXPECT_FALSE(valid("   "));
  EXPECT_FALSE(valid("{"));
  EXPECT_FALSE(valid("[1,]"));
  EXPECT_FALSE(valid("{\"a\":}"));
  EXPECT_FALSE(valid("{\"a\" 1}"));
  EXPECT_FALSE(valid("{a: 1}"));          // unquoted key
  EXPECT_FALSE(valid("'single'"));
  EXPECT_FALSE(valid("\"unterminated"));
  EXPECT_FALSE(valid("nul"));
  EXPECT_FALSE(valid("truefalse"));
  EXPECT_FALSE(valid("1 2"));             // trailing garbage
  EXPECT_FALSE(valid("[] []"));
  EXPECT_FALSE(valid("01"));              // leading zero
  EXPECT_FALSE(valid("+1"));
  EXPECT_FALSE(valid("1."));
  EXPECT_FALSE(valid(".5"));
  EXPECT_FALSE(valid("1e"));
  EXPECT_FALSE(valid(R"("\x41")"));       // bad escape
  EXPECT_FALSE(valid(R"("\u12")"));       // short \u
  EXPECT_FALSE(valid("\"raw\ncontrol\""));  // unescaped control char
}

TEST(JsonParse, DeeplyNestedButBounded) {
  std::string doc;
  constexpr int kDepth = 64;
  for (int i = 0; i < kDepth; ++i) doc += '[';
  doc += "1";
  for (int i = 0; i < kDepth; ++i) doc += ']';
  EXPECT_TRUE(valid(doc));
}

}  // namespace
}  // namespace avd::obs::json
