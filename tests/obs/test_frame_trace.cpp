// assemble_frame_traces: grouping by trace_id, span ordering, stream/frame
// extraction, connectivity, and critical-path / thread-count derivation.
#include "avd/obs/frame_trace.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace avd::obs {
namespace {

SpanRecord make_span(const char* name, std::uint64_t trace, std::uint64_t id,
                     std::uint64_t parent, std::uint64_t begin,
                     std::uint64_t end, int thread) {
  SpanRecord s;
  s.name = name;
  s.source = "test/frame_trace";
  s.begin_ns = begin;
  s.end_ns = end;
  s.thread = thread;
  s.trace_id = trace;
  s.span_id = id;
  s.parent_span_id = parent;
  return s;
}

TEST(FrameTrace, GroupsByTraceIdAndSkipsUntraced) {
  std::vector<SpanRecord> spans;
  spans.push_back(make_span("ingest", 1, 10, 0, 100, 200, 0));
  spans.push_back(make_span("detect", 2, 20, 0, 50, 80, 1));
  spans.push_back(make_span("untraced", 0, 0, 0, 10, 20, 0));
  spans.push_back(make_span("control", 1, 11, 10, 220, 300, 1));

  const std::vector<FrameTrace> traces = assemble_frame_traces(spans);
  ASSERT_EQ(traces.size(), 2u);
  // Ordered by first-span begin: trace 2 begins at 50, trace 1 at 100.
  EXPECT_EQ(traces[0].trace_id, 2u);
  EXPECT_EQ(traces[1].trace_id, 1u);
  EXPECT_EQ(traces[1].spans.size(), 2u);
  EXPECT_STREQ(traces[1].spans[0].name, "ingest");
  EXPECT_STREQ(traces[1].spans[1].name, "control");
  EXPECT_EQ(traces[1].begin_ns, 100u);
  EXPECT_EQ(traces[1].end_ns, 300u);
  EXPECT_EQ(traces[1].critical_path_ns(), 200u);
}

TEST(FrameTrace, ExtractsStreamAndFrameArgs) {
  std::vector<SpanRecord> spans;
  SpanRecord a = make_span("ingest", 5, 50, 0, 0, 10, 0);
  SpanRecord b = make_span("detect", 5, 51, 50, 20, 30, 1);
  b.arg_count = 2;
  b.args[0] = {"stream", 3};
  b.args[1] = {"frame", 12};
  spans.push_back(a);
  spans.push_back(b);

  const std::vector<FrameTrace> traces = assemble_frame_traces(spans);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].stream, 3);
  EXPECT_EQ(traces[0].frame, 12);
  EXPECT_TRUE(traces[0].has_span("ingest"));
  EXPECT_TRUE(traces[0].has_span("detect"));
  EXPECT_FALSE(traces[0].has_span("report"));
}

TEST(FrameTrace, NoArgsMeansUnknownStreamAndFrame) {
  std::vector<SpanRecord> spans{make_span("only", 9, 90, 0, 0, 1, 0)};
  const std::vector<FrameTrace> traces = assemble_frame_traces(spans);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].stream, -1);
  EXPECT_EQ(traces[0].frame, -1);
}

TEST(FrameTrace, ConnectedRequiresResolvableParents) {
  std::vector<SpanRecord> connected{
      make_span("root", 7, 70, 0, 0, 10, 0),
      make_span("child", 7, 71, 70, 10, 20, 1),
      make_span("grandchild", 7, 72, 71, 12, 18, 2),
  };
  EXPECT_TRUE(assemble_frame_traces(connected)[0].connected());
  EXPECT_EQ(assemble_frame_traces(connected)[0].thread_count(), 3u);

  std::vector<SpanRecord> broken{
      make_span("root", 8, 80, 0, 0, 10, 0),
      make_span("orphan", 8, 81, 999, 10, 20, 0),  // parent not in chain
  };
  EXPECT_FALSE(assemble_frame_traces(broken)[0].connected());
}

TEST(FrameTrace, EmptyInputYieldsNoTraces) {
  EXPECT_TRUE(assemble_frame_traces({}).empty());
}

}  // namespace
}  // namespace avd::obs
