// TraceSampler: tail-based retention (marked / slow-chain / head-sample),
// bounded retained FIFO, and span-name aggregation accounting for 100% of
// ingested frames. Includes the fleet-scale acceptance check: at 64 streams
// the retained raw spans are O(breaching + head-sampled frames) while
// SpanStats still cover every frame.
#include "avd/obs/trace_sampler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace avd::obs {
namespace {

// Synthetic chain: one ingest + one detect span, with a controllable
// critical path. Span names are string literals, matching the tracer's
// static-string contract.
FrameTrace make_frame(std::uint64_t trace_id, std::int64_t stream,
                      std::uint64_t begin_ns, std::uint64_t latency_ns) {
  FrameTrace f;
  f.trace_id = trace_id;
  f.stream = stream;
  f.begin_ns = begin_ns;
  f.end_ns = begin_ns + latency_ns;
  SpanRecord ingest;
  ingest.name = "ingest_frame";
  ingest.trace_id = trace_id;
  ingest.begin_ns = begin_ns;
  ingest.end_ns = begin_ns + latency_ns / 4;
  SpanRecord detect;
  detect.name = "detect";
  detect.trace_id = trace_id;
  detect.begin_ns = begin_ns + latency_ns / 4;
  detect.end_ns = begin_ns + latency_ns;
  f.spans = {ingest, detect};
  return f;
}

TEST(TraceSampler, RetainsMarkedChainsAndConsumesTheMark) {
  TraceSampler sampler;  // no deadline, no head sampling
  sampler.mark_interesting(7);
  std::vector<FrameTrace> frames{make_frame(5, 0, 0, 100),
                                 make_frame(7, 0, 100, 100)};
  sampler.ingest(frames);
  const std::vector<RetainedFrame> retained = sampler.retained();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].trace.trace_id, 7u);
  EXPECT_EQ(retained[0].reason, RetainReason::Marked);
  // The mark was consumed: the same id ingested again is not retained.
  std::vector<FrameTrace> again{make_frame(7, 0, 200, 100)};
  sampler.ingest(again);
  EXPECT_EQ(sampler.retained().size(), 1u);
  // Marking id 0 is a no-op (0 = "not part of a frame trace").
  sampler.mark_interesting(0);
  EXPECT_EQ(sampler.frames_retained(), 1u);
}

TEST(TraceSampler, RetainsSlowChainsPastTheDeadline) {
  TraceSamplerConfig config;
  config.deadline_ns = 1000;
  TraceSampler sampler(config);
  std::vector<FrameTrace> frames{make_frame(1, 0, 0, 500),
                                 make_frame(2, 0, 500, 1500),
                                 make_frame(3, 0, 2000, 1000)};  // == is fine
  sampler.ingest(frames);
  const std::vector<RetainedFrame> retained = sampler.retained();
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0].trace.trace_id, 2u);
  EXPECT_EQ(retained[0].reason, RetainReason::SlowChain);
}

TEST(TraceSampler, HeadSamplesEveryNth) {
  TraceSamplerConfig config;
  config.head_sample_every = 4;
  TraceSampler sampler(config);
  std::vector<FrameTrace> frames;
  for (std::uint64_t i = 0; i < 10; ++i)
    frames.push_back(make_frame(i + 1, 0, i * 100, 50));
  sampler.ingest(frames);
  const std::vector<RetainedFrame> retained = sampler.retained();
  // Frames at ingest index 0, 4, 8.
  ASSERT_EQ(retained.size(), 3u);
  for (const RetainedFrame& r : retained)
    EXPECT_EQ(r.reason, RetainReason::HeadSample);
  EXPECT_EQ(retained[0].trace.trace_id, 1u);
  EXPECT_EQ(retained[1].trace.trace_id, 5u);
  EXPECT_EQ(retained[2].trace.trace_id, 9u);
}

TEST(TraceSampler, RetainedFifoIsBoundedAndCountsEvictions) {
  TraceSamplerConfig config;
  config.head_sample_every = 1;  // retain everything
  config.max_retained = 4;
  TraceSampler sampler(config);
  std::vector<FrameTrace> frames;
  for (std::uint64_t i = 0; i < 10; ++i)
    frames.push_back(make_frame(i + 1, 0, i * 100, 50));
  sampler.ingest(frames);
  const std::vector<RetainedFrame> retained = sampler.retained();
  ASSERT_EQ(retained.size(), 4u);
  // Oldest evicted, newest survive: ids 7..10.
  EXPECT_EQ(retained.front().trace.trace_id, 7u);
  EXPECT_EQ(retained.back().trace.trace_id, 10u);
  EXPECT_EQ(sampler.retained_evicted(), 6u);
  EXPECT_EQ(sampler.frames_retained(), 10u);
}

TEST(TraceSampler, StatsAggregateEverySpanSortedByName) {
  TraceSampler sampler;
  std::vector<FrameTrace> frames{make_frame(1, 0, 0, 400),
                                 make_frame(2, 0, 400, 800)};
  sampler.ingest(frames);
  // Nothing retained (no rules armed) — but stats still saw every span.
  EXPECT_TRUE(sampler.retained().empty());
  const std::vector<SpanStats> stats = sampler.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "detect");  // sorted by name
  EXPECT_EQ(stats[1].name, "ingest_frame");
  EXPECT_EQ(stats[0].count, 2u);
  EXPECT_EQ(stats[0].sum_ns, 300u + 600u);
  EXPECT_EQ(stats[0].max_ns, 600u);
  EXPECT_DOUBLE_EQ(stats[0].mean_ns(), 450.0);
  EXPECT_GE(stats[0].p99_ns, stats[0].p50_ns);
  EXPECT_EQ(stats[1].count, 2u);
  EXPECT_EQ(sampler.spans_seen(), 4u);
}

TEST(TraceSampler, FleetScaleRetainsOnlyBreachingAndBaselineFrames) {
  // The PR's acceptance shape: 64 streams, 128 frames each. A handful of
  // frames breach the deadline; head sampling keeps a sparse baseline. The
  // sampler must hold raw spans for only breaching + head-sampled frames
  // (plus nothing else), while SpanStats account for 100% of frames.
  constexpr int kStreams = 64;
  constexpr int kFramesPerStream = 128;
  constexpr std::uint64_t kDeadlineNs = 1'000'000;
  TraceSamplerConfig config;
  config.deadline_ns = kDeadlineNs;
  config.head_sample_every = 512;
  config.max_retained = 4096;  // large enough that nothing evicts here
  TraceSampler sampler(config);

  std::uint64_t breaching = 0;
  std::vector<FrameTrace> frames;
  frames.reserve(static_cast<std::size_t>(kStreams) * kFramesPerStream);
  std::uint64_t next_id = 1;
  for (int s = 0; s < kStreams; ++s) {
    for (int i = 0; i < kFramesPerStream; ++i) {
      // Stream 13 breaches on every 32nd frame; everyone else is healthy.
      const bool breach = (s == 13 && i % 32 == 0);
      if (breach) ++breaching;
      frames.push_back(make_frame(next_id++, s,
                                  static_cast<std::uint64_t>(i) * 10'000,
                                  breach ? 2 * kDeadlineNs : kDeadlineNs / 2));
    }
  }
  sampler.ingest(frames);

  const std::uint64_t total =
      static_cast<std::uint64_t>(kStreams) * kFramesPerStream;
  const std::uint64_t head_samples =
      (total + config.head_sample_every - 1) / config.head_sample_every;
  // Retention is exactly the breaching set plus the head-sample grid — the
  // O(breaching + head-sample) bound, enforced as an equality. (No frame is
  // both here: stream 13's breaches never land on the 512 grid.)
  EXPECT_EQ(sampler.frames_seen(), total);
  EXPECT_EQ(sampler.frames_retained(), breaching + head_samples);
  EXPECT_LT(sampler.frames_retained(), total / 100);  // ~0.2% of the fleet
  std::uint64_t slow = 0;
  for (const RetainedFrame& r : sampler.retained())
    if (r.reason == RetainReason::SlowChain) ++slow;
  EXPECT_EQ(slow, breaching);

  // ...while the aggregates still account for every frame's every span.
  EXPECT_EQ(sampler.spans_seen(), 2 * total);
  std::uint64_t agg_count = 0;
  for (const SpanStats& s : sampler.stats()) agg_count += s.count;
  EXPECT_EQ(agg_count, 2 * total);
}

}  // namespace
}  // namespace avd::obs
