// SampleProfiler: idle windows, nested-stack capture from live worker
// threads, the unique-stack memory bound, shadow-stack depth overflow, and
// run_for() serialisation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/sample_profiler.hpp"
#include "avd/obs/trace.hpp"

namespace avd::obs {
namespace {

using namespace std::chrono_literals;

/// Tracing on for the test body, off + cleared after (the global tracer is
/// shared across the whole test binary).
class SampleProfilerTest : public testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

TEST_F(SampleProfilerTest, IdleWindowCountsIdleTicksOnly) {
  Tracer::global().set_enabled(false);  // nothing arms, nothing opens
  SampleProfilerConfig config;
  config.hz = 500.0;
  SampleProfiler profiler(config);
  const ProfileReport report = profiler.run_for(100ms);

  EXPECT_GT(report.ticks, 0u);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_EQ(report.idle_ticks, report.ticks);
  EXPECT_TRUE(report.stacks.empty());
  EXPECT_TRUE(report.to_collapsed().empty());
  // The JSON report stays a valid document even when empty.
  EXPECT_TRUE(json::valid(report.to_json()));
  EXPECT_GT(report.duration_ns, 0u);
}

TEST_F(SampleProfilerTest, CapturesNestedStackFromWorkerThread) {
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::thread worker([&] {
    ScopedSpan outer("outer_work", "test/profiler");
    ScopedSpan inner("inner_work", "test/profiler");
    ready.store(true);
    while (!done.load()) std::this_thread::sleep_for(1ms);
  });
  while (!ready.load()) std::this_thread::sleep_for(1ms);

  SampleProfilerConfig config;
  config.hz = 500.0;
  SampleProfiler profiler(config);
  const ProfileReport report = profiler.run_for(200ms);
  done.store(true);
  worker.join();

  ASSERT_GT(report.samples, 0u);
  bool saw_nested = false;
  for (const ProfileStack& s : report.stacks) {
    if (s.frames == std::vector<std::string>{"outer_work", "inner_work"})
      saw_nested = true;
  }
  EXPECT_TRUE(saw_nested) << report.to_collapsed();

  // Collapsed rendering: "outer_work;inner_work <count>".
  const std::string collapsed = report.to_collapsed();
  EXPECT_NE(collapsed.find("outer_work;inner_work "), std::string::npos);

  // JSON rendering parses strictly and carries the same stack.
  const std::optional<json::Value> doc = json::parse(report.to_json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* stacks = doc->find("stacks");
  ASSERT_NE(stacks, nullptr);
  EXPECT_EQ(stacks->array.size(), report.stacks.size());

  // The report reset on stop(): a fresh window starts from zero.
  const ProfileReport second = profiler.run_for(20ms);
  EXPECT_LT(second.ticks, report.ticks);
}

TEST_F(SampleProfilerTest, UniqueStackCapBoundsMemory) {
  // Two threads holding two distinct stacks; a cap of 1 keeps exactly one
  // and counts the rest as dropped instead of allocating.
  std::atomic<bool> done{false};
  std::atomic<int> ready{0};
  const auto hold = [&](const char* name) {
    return std::thread([&, name] {
      ScopedSpan span(name, "test/profiler");
      ready.fetch_add(1);
      while (!done.load()) std::this_thread::sleep_for(1ms);
    });
  };
  std::thread t1 = hold("stack_one");
  std::thread t2 = hold("stack_two");
  while (ready.load() < 2) std::this_thread::sleep_for(1ms);

  SampleProfilerConfig config;
  config.hz = 500.0;
  config.max_unique_stacks = 1;
  SampleProfiler profiler(config);
  const ProfileReport report = profiler.run_for(150ms);
  done.store(true);
  t1.join();
  t2.join();

  EXPECT_LE(report.stacks.size(), 1u);
  EXPECT_GT(report.samples, 0u);
  EXPECT_GT(report.dropped_samples, 0u);
}

TEST_F(SampleProfilerTest, DepthOverflowClampsAndRebalances) {
  // Nest far past kMaxOpenDepth: the sampler sees at most kMaxOpenDepth
  // frames, and the shadow stack still balances on unwind.
  constexpr int kDepth = Tracer::kMaxOpenDepth + 8;
  std::atomic<bool> deep{false};
  std::atomic<bool> done{false};
  std::thread worker([&] {
    std::vector<std::unique_ptr<ScopedSpan>> spans;
    spans.reserve(kDepth);
    for (int i = 0; i < kDepth; ++i)
      spans.push_back(
          std::make_unique<ScopedSpan>("deep_span", "test/profiler"));
    deep.store(true);
    while (!done.load()) std::this_thread::sleep_for(1ms);
    while (!spans.empty()) spans.pop_back();  // unwind fully
  });
  while (!deep.load()) std::this_thread::sleep_for(1ms);

  const std::vector<Tracer::OpenStack> open =
      Tracer::global().sample_open_stacks();
  bool saw_clamped = false;
  for (const Tracer::OpenStack& s : open)
    if (s.depth == Tracer::kMaxOpenDepth) saw_clamped = true;
  EXPECT_TRUE(saw_clamped);

  SampleProfilerConfig config;
  config.hz = 500.0;
  SampleProfiler profiler(config);
  const ProfileReport report = profiler.run_for(100ms);
  done.store(true);
  worker.join();
  for (const ProfileStack& s : report.stacks)
    EXPECT_LE(s.frames.size(),
              static_cast<std::size_t>(Tracer::kMaxOpenDepth));

  // After full unwind the thread has no open spans.
  for (const Tracer::OpenStack& s : Tracer::global().sample_open_stacks())
    EXPECT_GT(s.depth, 0);
}

TEST_F(SampleProfilerTest, LifecycleIsIdempotent) {
  SampleProfiler profiler;
  // stop() without start(): an empty report, no crash.
  const ProfileReport empty = profiler.stop();
  EXPECT_EQ(empty.ticks, 0u);
  EXPECT_FALSE(profiler.running());

  profiler.start();
  profiler.start();  // no-op
  EXPECT_TRUE(profiler.running());
  std::this_thread::sleep_for(30ms);
  (void)profiler.stop();
  EXPECT_FALSE(profiler.running());
}

TEST_F(SampleProfilerTest, ConcurrentRunForCallsSerialise) {
  std::atomic<bool> done{false};
  std::thread worker([&] {
    ScopedSpan span("held_span", "test/profiler");
    while (!done.load()) std::this_thread::sleep_for(1ms);
  });

  SampleProfilerConfig config;
  config.hz = 500.0;
  SampleProfiler profiler(config);
  ProfileReport a, b;
  std::thread ra([&] { a = profiler.run_for(80ms); });
  std::thread rb([&] { b = profiler.run_for(80ms); });
  ra.join();
  rb.join();
  done.store(true);
  worker.join();

  // Each caller got its own complete window — ticks in both, no bleed-over
  // (the second window cannot reuse the first's thread or counts).
  EXPECT_GT(a.ticks, 0u);
  EXPECT_GT(b.ticks, 0u);
  EXPECT_FALSE(profiler.running());
}

}  // namespace
}  // namespace avd::obs
