// Causal tracing: TraceScope install/restore, ScopedSpan parent inheritance
// (same-thread nesting and cross-thread hand-off), span args, and the
// dropped-span counters published into the global MetricsRegistry.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "avd/obs/metrics.hpp"
#include "avd/obs/trace.hpp"

namespace avd::obs {
namespace {

TEST(TraceContext, IdsAreNonzeroAndUnique) {
  const std::uint64_t t1 = Tracer::new_trace_id();
  const std::uint64_t t2 = Tracer::new_trace_id();
  const std::uint64_t s1 = Tracer::new_span_id();
  const std::uint64_t s2 = Tracer::new_span_id();
  EXPECT_NE(t1, 0u);
  EXPECT_NE(s1, 0u);
  EXPECT_NE(t1, t2);
  EXPECT_NE(s1, s2);
}

TEST(TraceContext, ScopeInstallsAndRestores) {
  const TraceContext before = Tracer::current_context();
  {
    TraceScope scope({77, 5});
    EXPECT_EQ(Tracer::current_context().trace_id, 77u);
    EXPECT_EQ(Tracer::current_context().parent_span_id, 5u);
    {
      TraceScope inner({88, 9});
      EXPECT_EQ(Tracer::current_context().trace_id, 88u);
    }
    EXPECT_EQ(Tracer::current_context().trace_id, 77u);
  }
  EXPECT_EQ(Tracer::current_context().trace_id, before.trace_id);
}

TEST(TraceContext, NestedSpansFormParentChain) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    TraceScope root({Tracer::new_trace_id(), 0});
    ScopedSpan outer("outer", "test/ctx");
    { ScopedSpan inner("inner", "test/ctx"); }
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& inner = spans[0];  // destructs (records) first
  const SpanRecord& outer = spans[1];
  EXPECT_STREQ(inner.name, "inner");
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_NE(inner.trace_id, 0u);
  EXPECT_EQ(outer.parent_span_id, 0u);  // root of the trace
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
}

TEST(TraceContext, ContextCrossesThreadsThroughExplicitHandoff) {
  // The runtime's pattern: span A runs on thread 1, its context() travels
  // with the task, thread 2 re-installs it and span B parents on A.
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  TraceContext carried;
  {
    TraceScope root({Tracer::new_trace_id(), 0});
    ScopedSpan a("stage_a", "test/hop");
    carried = a.context();
    std::thread worker([carried] {
      TraceScope scope(carried);
      ScopedSpan b("stage_b", "test/hop");
    });
    worker.join();
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.drain();
  const SpanRecord *a = nullptr, *b = nullptr;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) == "stage_a") a = &s;
    if (std::string_view(s.name) == "stage_b") b = &s;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->trace_id, b->trace_id);
  EXPECT_EQ(b->parent_span_id, a->span_id);
  EXPECT_NE(a->thread, b->thread);
}

TEST(TraceContext, SpanArgsRecordAndLookUp) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ScopedSpan span("argful", "test/args", {{"stream", 3}, {"frame", 41}});
    span.arg("mode", 2);
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg_count, 3);
  EXPECT_EQ(spans[0].arg("stream"), 3);
  EXPECT_EQ(spans[0].arg("frame"), 41);
  EXPECT_EQ(spans[0].arg("mode"), 2);
  EXPECT_EQ(spans[0].arg("absent"), -1);
  EXPECT_EQ(spans[0].arg("absent", 7), 7);
}

TEST(TraceContext, ArgsBeyondCapacityAreDropped) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ScopedSpan span("overfull", "test/args",
                    {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}});
    span.arg("f", 6);
  }
  tracer.set_enabled(false);
  const std::vector<SpanRecord> spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg_count, SpanRecord::kMaxArgs);
  EXPECT_EQ(spans[0].arg("d"), 4);
  EXPECT_EQ(spans[0].arg("e"), -1);
  EXPECT_EQ(spans[0].arg("f"), -1);
}

TEST(TraceContext, UnarmedSpanHasZeroContext) {
  Tracer& tracer = Tracer::global();
  tracer.set_enabled(false);
  tracer.clear();
  ScopedSpan span("off", "test/off", {{"x", 1}});
  EXPECT_EQ(span.context().trace_id, 0u);
  EXPECT_EQ(span.context().parent_span_id, 0u);
}

TEST(TraceContext, RingDropsPublishIntoGlobalRegistry) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  Counter& total = MetricsRegistry::global().counter("obs.trace.dropped_spans");
  const std::uint64_t before = total.value();
  tracer.set_enabled(true);
  const std::size_t n = Tracer::kRingCapacity + 250;
  for (std::size_t i = 0; i < n; ++i)
    tracer.record("flood", "test/dropmetric", i, i + 1);
  tracer.set_enabled(false);
  EXPECT_GE(total.value() - before, 250u);
  EXPECT_GE(tracer.dropped(), 250u);
  tracer.clear();
}

}  // namespace
}  // namespace avd::obs
