// Model and dataset persistence across process boundaries: everything a
// deployment writes to disk must reload into functionally identical
// components.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "avd/datasets/dataset_io.hpp"
#include "avd/detect/dark_training.hpp"
#include "avd/detect/hog_svm_detector.hpp"

namespace avd {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "avd_persist").string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(PersistenceTest, HogSvmModelThroughFile) {
  data::VehiclePatchSpec spec;
  spec.n_positive = spec.n_negative = 60;
  const det::HogSvmModel original =
      det::train_hog_svm(data::make_vehicle_patches(spec), "day");

  {
    std::ofstream out(dir_ + "/day.hogsvm");
    original.save(out);
  }
  std::ifstream in(dir_ + "/day.hogsvm");
  const det::HogSvmModel reloaded = det::HogSvmModel::load(in);

  // Identical patch-level decisions on fresh data.
  data::VehiclePatchSpec fresh = spec;
  fresh.seed = 31415;
  const data::PatchDataset test = data::make_vehicle_patches(fresh);
  for (std::size_t i = 0; i < test.size(); i += 9)
    EXPECT_NEAR(reloaded.decision(test.patches[i].gray),
                original.decision(test.patches[i].gray), 1e-4);
}

TEST_F(PersistenceTest, DbnThroughFile) {
  det::DarkTrainingSpec spec;
  spec.windows.per_class = 60;
  spec.dbn.pretrain.epochs = 6;
  spec.dbn.finetune_epochs = 15;
  const ml::Dbn original = det::train_taillight_dbn(spec);
  {
    std::ofstream out(dir_ + "/taillight.dbn");
    original.save(out);
  }
  std::ifstream in(dir_ + "/taillight.dbn");
  const ml::Dbn reloaded = ml::Dbn::load(in);

  data::TaillightWindowSpec ws;
  ws.per_class = 20;
  ws.seed = 2718;
  for (const auto& w : data::make_taillight_windows(ws))
    EXPECT_EQ(reloaded.predict(w.pixels), original.predict(w.pixels));
}

TEST_F(PersistenceTest, DarkDetectorComponentsThroughFiles) {
  // Persist the dark detector's two models, rebuild the detector, verify
  // identical detections.
  det::DarkTrainingSpec spec;
  spec.windows.per_class = 80;
  spec.dbn.pretrain.epochs = 8;
  spec.dbn.finetune_epochs = 20;
  spec.pairing_scenes = 40;
  const det::DarkVehicleDetector original = det::train_dark_detector(spec);

  {
    std::ofstream out(dir_ + "/dbn.txt");
    original.dbn().save(out);
  }
  {
    std::ofstream out(dir_ + "/pair.svm");
    original.pairing_svm().save(out);
  }
  std::ifstream din(dir_ + "/dbn.txt");
  std::ifstream sin(dir_ + "/pair.svm");
  const det::DarkVehicleDetector rebuilt(
      ml::Dbn::load(din), ml::LinearSvm::load(sin), original.config());

  data::SceneGenerator gen(data::LightingCondition::Dark, 1);
  for (int i = 0; i < 3; ++i) {
    const img::RgbImage frame =
        data::render_scene(gen.random_scene({480, 270}, 2));
    const auto a = original.detect(frame);
    const auto b = rebuilt.detect(frame);
    ASSERT_EQ(a.size(), b.size()) << i;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].box, b[k].box);
      EXPECT_NEAR(a[k].score, b[k].score, 1e-4);  // text round-trip precision
    }
  }
}

TEST_F(PersistenceTest, TrainOnReloadedDatasetMatchesOriginal) {
  // Save a dataset, reload it, train on both: models must agree exactly
  // (training is deterministic and the pixels round-trip losslessly).
  data::VehiclePatchSpec spec;
  spec.n_positive = spec.n_negative = 40;
  const data::PatchDataset original = data::make_vehicle_patches(spec);
  data::save_dataset(original, dir_ + "/ds");
  const data::PatchDataset reloaded = data::load_dataset(dir_ + "/ds");

  const det::HogSvmModel m1 = det::train_hog_svm(original, "a");
  const det::HogSvmModel m2 = det::train_hog_svm(reloaded, "b");
  ASSERT_EQ(m1.svm.dimension(), m2.svm.dimension());
  for (std::size_t i = 0; i < m1.svm.dimension(); i += 17)
    EXPECT_FLOAT_EQ(m1.svm.weights()[i], m2.svm.weights()[i]);
  EXPECT_FLOAT_EQ(m1.svm.bias(), m2.svm.bias());
}

TEST_F(PersistenceTest, SaveLoadIsTextFormat) {
  // The artefacts are inspectable text, not opaque blobs.
  data::VehiclePatchSpec spec;
  spec.n_positive = spec.n_negative = 20;
  const det::HogSvmModel model =
      det::train_hog_svm(data::make_vehicle_patches(spec), "day");
  std::stringstream ss;
  model.save(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("hogsvm day"), std::string::npos);
  EXPECT_NE(text.find("svm "), std::string::npos);
}

}  // namespace
}  // namespace avd
