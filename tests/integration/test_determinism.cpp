// Cross-module determinism (DESIGN.md §6): identical seeds produce
// bit-identical artefacts through every layer of the stack. This is what
// makes the paper-reproduction benches trustworthy run to run.
#include <gtest/gtest.h>

#include "avd/core/adaptive_system.hpp"
#include "avd/image/color.hpp"

namespace avd {
namespace {

core::TrainingBudget tiny() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 30;
  b.pedestrian_pos = b.pedestrian_neg = 20;
  b.dbn_windows_per_class = 40;
  b.pairing_scenes = 20;
  return b;
}

TEST(Determinism, SceneRenderingBitIdentical) {
  data::SceneGenerator g1(data::LightingCondition::Dusk, 99);
  data::SceneGenerator g2(data::LightingCondition::Dusk, 99);
  const img::RgbImage a = data::render_scene(g1.random_scene({320, 180}, 2, 1));
  const img::RgbImage b = data::render_scene(g2.random_scene({320, 180}, 2, 1));
  EXPECT_EQ(a.r(), b.r());
  EXPECT_EQ(a.g(), b.g());
  EXPECT_EQ(a.b(), b.b());
}

TEST(Determinism, FullAdaptiveRunIdentical) {
  const core::SystemModels m1 = core::build_system_models(tiny());
  const core::SystemModels m2 = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem s1(m1, cfg), s2(m2, cfg);
  const auto spec = data::DriveSequence::canonical_drive({480, 270}, 30);
  const auto r1 = s1.run(data::DriveSequence(spec));
  const auto r2 = s2.run(data::DriveSequence(spec));

  ASSERT_EQ(r1.frames.size(), r2.frames.size());
  EXPECT_EQ(r1.reconfig_count(), r2.reconfig_count());
  EXPECT_EQ(r1.dropped_vehicle_frames(), r2.dropped_vehicle_frames());
  for (std::size_t i = 0; i < r1.frames.size(); ++i) {
    EXPECT_EQ(r1.frames[i].sensed, r2.frames[i].sensed) << i;
    EXPECT_EQ(r1.frames[i].active_config, r2.frames[i].active_config) << i;
    EXPECT_EQ(r1.frames[i].vehicle_processed, r2.frames[i].vehicle_processed)
        << i;
  }
  for (std::size_t i = 0; i < r1.reconfigs.size(); ++i) {
    EXPECT_EQ(r1.reconfigs[i].start.ps, r2.reconfigs[i].start.ps);
    EXPECT_EQ(r1.reconfigs[i].end.ps, r2.reconfigs[i].end.ps);
  }
}

TEST(Determinism, DetectionOnSameFrameIdentical) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.sliding.score_threshold = -0.5;  // plenty of detections to compare
  core::AdaptiveSystem system(models, cfg);

  data::SceneGenerator gen(data::LightingCondition::Day, 31);
  const img::RgbImage frame = data::render_scene(gen.random_scene({256, 160}, 2));
  const auto a = system.detect_vehicles(frame, data::LightingCondition::Day);
  const auto b = system.detect_vehicles(frame, data::LightingCondition::Day);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].box, b[i].box);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

TEST(Determinism, SeedChangesEverything) {
  core::TrainingBudget b1 = tiny(), b2 = tiny();
  b2.seed += 1;
  const core::SystemModels m1 = core::build_system_models(b1);
  const core::SystemModels m2 = core::build_system_models(b2);
  // Different seeds must produce different weights (sanity that the seed is
  // actually plumbed through).
  double diff = 0.0;
  for (std::size_t i = 0; i < m1.day.svm.dimension(); ++i)
    diff += std::abs(static_cast<double>(m1.day.svm.weights()[i]) -
                     m2.day.svm.weights()[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(Determinism, PerConditionSummariesConsistent) {
  const core::SystemModels models = core::build_system_models(tiny());
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(models, cfg);
  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.segments = {{data::LightingCondition::Day, 10},
                   {data::LightingCondition::Dark, 10}};
  const auto report = system.run(data::DriveSequence(spec));
  const auto summary = report.per_condition();
  ASSERT_EQ(summary.size(), 3u);
  int total = 0, dropped = 0;
  for (const auto& s : summary) {
    total += s.frames;
    dropped += s.dropped;
  }
  EXPECT_EQ(total, static_cast<int>(report.frames.size()));
  EXPECT_EQ(dropped, report.dropped_vehicle_frames());
  EXPECT_EQ(summary[0].frames + summary[1].frames + summary[2].frames, 20);
}

}  // namespace
}  // namespace avd
