// End-to-end integration: every module working together on realistic flows.
#include <gtest/gtest.h>

#include "avd/core/adaptive_system.hpp"
#include "avd/image/color.hpp"
#include "avd/image/draw.hpp"
#include "avd/image/io.hpp"

#include <filesystem>

namespace avd {
namespace {

core::TrainingBudget small_budget() {
  core::TrainingBudget b;
  b.vehicle_pos = b.vehicle_neg = 50;
  b.pedestrian_pos = b.pedestrian_neg = 35;
  b.dbn_windows_per_class = 70;
  b.pairing_scenes = 35;
  return b;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::AdaptiveSystemConfig cfg;
    cfg.run_detectors = true;
    cfg.sliding.score_threshold = 0.0;
    system_ = new core::AdaptiveSystem(
        core::build_system_models(small_budget()), cfg);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static core::AdaptiveSystem& system() { return *system_; }

 private:
  static core::AdaptiveSystem* system_;
};

core::AdaptiveSystem* EndToEndTest::system_ = nullptr;

TEST_F(EndToEndTest, ShortDriveWithDetectionProducesSaneReport) {
  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.vehicles_per_frame = 1;
  spec.pedestrians_per_frame = 0;
  spec.segments = {{data::LightingCondition::Day, 6},
                   {data::LightingCondition::Dark, 6}};
  const auto report = system().run(data::DriveSequence(spec));

  ASSERT_EQ(report.frames.size(), 12u);
  EXPECT_EQ(report.reconfig_count(), 1);
  EXPECT_EQ(report.dropped_vehicle_frames(), 1);

  // Detection ran on processed frames and found a reasonable share of the
  // ground truth across both conditions.
  const det::MatchResult total = report.total_vehicle_match();
  EXPECT_GT(total.true_positives, 3);
  const int truth_frames = 11;  // 12 frames minus the dropped one
  EXPECT_LE(total.true_positives, truth_frames);
}

TEST_F(EndToEndTest, DetectionQualityTrackedPerFrame) {
  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.vehicles_per_frame = 2;
  spec.segments = {{data::LightingCondition::Dark, 5}};
  const auto report = system().run(data::DriveSequence(spec));
  for (const auto& f : report.frames) {
    EXPECT_EQ(f.vehicles_truth, 2);
    if (f.vehicle_processed) {
      EXPECT_EQ(f.vehicle_match.true_positives + f.vehicle_match.false_negatives,
                2);
    }
  }
}

TEST_F(EndToEndTest, PedestrianDetectorFindsRenderedPedestrian) {
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Day;
  scene.frame_size = {160, 128};
  scene.horizon_y = 30;
  data::PedestrianSpec p;
  p.body = {64, 55, 30, 62};
  scene.pedestrians.push_back(p);
  scene.noise_seed = 3;
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));
  const auto dets = system().detect_pedestrians(gray);
  ASSERT_FALSE(dets.empty());
  EXPECT_EQ(dets[0].class_id, det::kClassPedestrian);
  const det::MatchResult m = det::match_detections(dets, {p.body}, 0.25);
  EXPECT_EQ(m.true_positives, 1);
}

TEST_F(EndToEndTest, AnnotatedFrameRoundTripsThroughPpm) {
  // The Fig. 5 workflow: render, detect, annotate, write, read back.
  data::SceneGenerator gen(data::LightingCondition::Dark, 12);
  const data::SceneSpec scene = gen.random_scene({480, 270}, 1);
  img::RgbImage frame = data::render_scene(scene);
  const auto dets =
      system().detect_vehicles(frame, data::LightingCondition::Dark);
  for (const auto& d : dets) img::draw_rect(frame, d.box, {0, 255, 0}, 2);

  const auto dir = std::filesystem::temp_directory_path() / "avd_e2e";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "annotated.ppm").string();
  img::write_ppm(frame, path);
  const img::RgbImage back = img::read_ppm(path);
  EXPECT_EQ(back.size(), frame.size());
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEndTest, WrongPipelineForConditionPerformsWorse) {
  // Running the HOG day model on dark frames misses vehicles that the dark
  // pipeline finds — the premise of the whole adaptive design.
  data::SceneGenerator gen(data::LightingCondition::Dark, 41);
  int dark_hits = 0, day_hits = 0;
  for (int i = 0; i < 6; ++i) {
    const data::SceneSpec scene = gen.random_scene({480, 270}, 1);
    const img::RgbImage frame = data::render_scene(scene);
    const auto via_dark =
        system().detect_vehicles(frame, data::LightingCondition::Dark);
    const auto via_day =
        system().detect_vehicles(frame, data::LightingCondition::Day);
    const std::vector<img::Rect> truth{scene.vehicles[0].body};
    dark_hits += det::match_detections(via_dark, truth, 0.25).true_positives;
    day_hits += det::match_detections(via_day, truth, 0.25).true_positives;
  }
  EXPECT_GT(dark_hits, day_hits);
}

}  // namespace
}  // namespace avd
