// Direct checks of the paper's headline numbers against the models
// (EXPERIMENTS.md records the same comparisons with full-size workloads).
#include <gtest/gtest.h>

#include "avd/detect/dark_training.hpp"
#include "avd/detect/hog_svm_detector.hpp"
#include "avd/soc/bitstream.hpp"
#include "avd/soc/frame_scheduler.hpp"
#include "avd/soc/hw_pipeline.hpp"
#include "avd/soc/reconfig.hpp"

namespace avd {
namespace {

TEST(PaperClaims, ReconfigurationThroughputLadder) {
  // §IV-A: HWICAP 19, PCAP 145, ZyCAP 382, ours 390 MB/s.
  const soc::DeviceResources device;
  const auto partition =
      soc::floorplan_partition(soc::dark_blocks(), device, {});
  const auto bits = soc::make_partial_bitstream("dark", partition, device, {});
  const auto rows = soc::compare_methods(soc::default_platform(), bits);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_NEAR(rows[0].throughput_mbps, 19.0, 1.9);    // HWICAP
  EXPECT_NEAR(rows[1].throughput_mbps, 145.0, 14.5);  // PCAP
  EXPECT_NEAR(rows[2].throughput_mbps, 382.0, 19.0);  // ZyCAP
  EXPECT_NEAR(rows[3].throughput_mbps, 390.0, 19.5);  // ours
}

TEST(PaperClaims, SpeedupOverPcap) {
  const soc::DeviceResources device;
  const auto bits = soc::make_partial_bitstream(
      "dark", soc::floorplan_partition(soc::dark_blocks(), device, {}), device,
      {});
  const auto rows = soc::compare_methods(soc::default_platform(), bits);
  EXPECT_GE(rows[3].throughput_mbps / rows[1].throughput_mbps, 2.6);
}

TEST(PaperClaims, PartialBitstreamIsEightMB) {
  const soc::DeviceResources device;
  const auto bits = soc::make_partial_bitstream(
      "dark", soc::floorplan_partition(soc::dark_blocks(), device, {}), device,
      {});
  EXPECT_NEAR(bits.megabytes(), 8.0, 0.2);
}

TEST(PaperClaims, TwentyMsReconfigEqualsOneFrame) {
  // §IV-B: "reconfiguration time is measured as 20ms which is equivalent to
  // missing one frame in a sequence of 50fps".
  const soc::DeviceResources device;
  const auto bits = soc::make_partial_bitstream(
      "dark", soc::floorplan_partition(soc::dark_blocks(), device, {}), device,
      {});
  soc::ReconfigController ctrl(soc::default_platform(),
                               soc::ReconfigMethod::PlDmaIcap);
  ctrl.stage(bits);
  const auto result =
      ctrl.reconfigure(soc::TimePoint{} + soc::Duration::from_ms(57), bits);
  EXPECT_NEAR(result.duration().as_ms(), 20.0, 3.0);

  soc::FrameScheduler scheduler;
  scheduler.add_reconfig_window(result.start, result.duration(), "dark");
  const auto records = scheduler.schedule(10, "day-dusk");
  EXPECT_EQ(soc::FrameScheduler::dropped_vehicle_frames(records), 1);
}

TEST(PaperClaims, FiftyFpsOnHdtvAt125MHz) {
  for (const auto& model :
       {soc::day_dusk_pipeline_model(), soc::dark_pipeline_model(),
        soc::pedestrian_pipeline_model()}) {
    EXPECT_EQ(model.fabric_mhz, 125u) << model.name;
    EXPECT_GE(model.max_fps(soc::kHdtvFrame), 50.0) << model.name;
  }
}

TEST(PaperClaims, Table2Reproduction) {
  const auto rows = soc::table2_rows();
  // Exact integer percentages of paper Table II.
  const int expected[5][4] = {
      {21, 10, 12, 1},   // Static Design
      {45, 45, 40, 40},  // Reconfigurable Partition
      {19, 9, 11, 1},    // Day and Dusk Design
      {40, 23, 19, 29},  // Dark Design
      {66, 55, 52, 41},  // Total Usage
  };
  ASSERT_EQ(rows.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i].lut_pct, expected[i][0]) << rows[i].name;
    EXPECT_EQ(rows[i].ff_pct, expected[i][1]) << rows[i].name;
    EXPECT_EQ(rows[i].bram_pct, expected[i][2]) << rows[i].name;
    EXPECT_EQ(rows[i].dsp_pct, expected[i][3]) << rows[i].name;
  }
}

TEST(PaperClaims, TableOneQualitativeShape) {
  // Reduced-size version of the Table I protocol; the full-size run lives in
  // bench/table1_svm_models. Assert the orderings the paper's table shows.
  using data::LightingCondition;
  data::VehiclePatchSpec day_tr{LightingCondition::Day, {64, 64}, 120, 120,
                                0.0, 1};
  data::VehiclePatchSpec dusk_tr{LightingCondition::Dusk, {64, 64}, 120, 120,
                                 0.0, 2};
  const auto day_train = data::make_vehicle_patches(day_tr);
  const auto dusk_train = data::make_vehicle_patches(dusk_tr);

  const auto m_day = det::train_hog_svm(day_train, "day");
  const auto m_dusk = det::train_hog_svm(dusk_train, "dusk");
  const auto m_comb = det::train_hog_svm(
      data::PatchDataset::concat(day_train, dusk_train), "combined");

  data::VehiclePatchSpec day_te{LightingCondition::Day, {64, 64}, 150, 20,
                                0.0, 11};
  data::VehiclePatchSpec dusk_te{LightingCondition::Dusk, {64, 64}, 150, 110,
                                 0.10, 12};
  const auto day_test = data::make_vehicle_patches(day_te);
  const auto dusk_test = data::make_vehicle_patches(dusk_te);
  const auto subset = dusk_test.without_very_dark();

  const double day_on_day = det::evaluate_patches(m_day, day_test).accuracy();
  const double dusk_on_day = det::evaluate_patches(m_dusk, day_test).accuracy();
  const double day_on_dusk = det::evaluate_patches(m_day, dusk_test).accuracy();
  const double dusk_on_dusk =
      det::evaluate_patches(m_dusk, dusk_test).accuracy();
  const double comb_on_day = det::evaluate_patches(m_comb, day_test).accuracy();
  const ml::BinaryCounts dusk_on_day_counts =
      det::evaluate_patches(m_dusk, day_test);

  // Row/column orderings of Table I:
  EXPECT_GT(day_on_day, 0.9);              // day model at home: ~96%
  EXPECT_LT(dusk_on_day, 0.65);             // dusk model collapses on day
  EXPECT_GT(dusk_on_day_counts.fn, dusk_on_day_counts.fp);  // FN-dominated
  EXPECT_GT(day_on_day, day_on_dusk);      // every model best at home
  EXPECT_GT(dusk_on_dusk, dusk_on_day);
  EXPECT_GT(comb_on_day, dusk_on_day);     // combined rescues day
  EXPECT_LT(comb_on_day, day_on_day + 1e-9);  // but dips vs pure day model

  // Excluding very-dark images lifts every model (last Table I column).
  for (const auto* m : {&m_day, &m_dusk, &m_comb}) {
    EXPECT_GE(det::evaluate_patches(*m, subset).accuracy(),
              det::evaluate_patches(*m, dusk_test).accuracy());
  }
}

TEST(PaperClaims, DarkPipelineAccuracyNear95) {
  det::DarkTrainingSpec spec;
  spec.windows.per_class = 100;
  spec.dbn.pretrain.epochs = 10;
  spec.dbn.finetune_epochs = 25;
  spec.pairing_scenes = 50;
  const auto detector = det::train_dark_detector(spec);
  const auto counts =
      det::evaluate_dark_frames(detector, 50, 50, {480, 270}, 2468);
  EXPECT_GT(counts.accuracy(), 0.88);  // paper: 95% on the SYSU dark subset
}

}  // namespace
}  // namespace avd
