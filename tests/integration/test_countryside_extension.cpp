// The countryside extension end-to-end: animal rendering, the third partial
// configuration, and the adaptive system loading it on countryside roads.
#include <gtest/gtest.h>

#include "avd/core/adaptive_system.hpp"
#include "avd/image/color.hpp"
#include "avd/soc/resources.hpp"

namespace avd {
namespace {

TEST(Countryside, AnimalRenderingVisibleInDaylight) {
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Day;
  scene.frame_size = {160, 100};
  scene.horizon_y = 30;
  data::AnimalSpec a;
  a.body = {50, 45, 60, 45};
  scene.animals.push_back(a);
  scene.noise_seed = 1;
  const img::RgbImage with = data::render_scene(scene);
  scene.animals.clear();
  const img::RgbImage without = data::render_scene(scene);
  int diff = 0;
  for (int y = 45; y < 90; ++y)
    for (int x = 50; x < 110; ++x)
      diff += with.pixel(x, y).r != without.pixel(x, y).r;
  EXPECT_GT(diff, 200);  // the animal actually painted pixels
}

TEST(Countryside, AnimalPatchesTrainableModel) {
  data::AnimalPatchSpec spec;
  spec.n_positive = 80;
  spec.n_negative = 80;
  det::HogSvmTrainOptions opts;
  opts.class_id = det::kClassAnimal;
  const det::HogSvmModel model =
      det::train_hog_svm(data::make_animal_patches(spec), "animal", opts);
  EXPECT_EQ(model.class_id, det::kClassAnimal);
  EXPECT_EQ(model.window, (img::Size{64, 48}));

  data::AnimalPatchSpec held_out = spec;
  held_out.seed = 987;
  const ml::BinaryCounts counts =
      det::evaluate_patches(model, data::make_animal_patches(held_out));
  EXPECT_GT(counts.accuracy(), 0.8);
}

TEST(Countryside, AnimalModelRejectsVehicles) {
  data::AnimalPatchSpec spec;
  spec.n_positive = 80;
  spec.n_negative = 80;
  det::HogSvmTrainOptions opts;
  opts.class_id = det::kClassAnimal;
  const det::HogSvmModel model =
      det::train_hog_svm(data::make_animal_patches(spec), "animal", opts);

  ml::Rng rng(55);
  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    const img::ImageU8 vehicle = data::render_vehicle_patch(
        data::LightingCondition::Day, {64, 48}, rng);
    fired += model.classify(vehicle);
  }
  EXPECT_LE(fired, 4);  // <= 20% confusion with vehicles
}

TEST(Countryside, ConfigurationFitsPartition) {
  const soc::DeviceResources device;
  const soc::ModuleResources partition =
      soc::floorplan_partition(soc::dark_blocks(), device, {});
  EXPECT_TRUE(soc::fits(soc::sum_modules(soc::countryside_blocks()), partition));
  // And it is genuinely bigger than plain day/dusk.
  EXPECT_GT(soc::sum_modules(soc::countryside_blocks()).lut,
            soc::sum_modules(soc::day_dusk_blocks()).lut);
}

TEST(Countryside, ConfigSelectionRules) {
  using data::LightingCondition;
  using data::RoadType;
  EXPECT_STREQ(core::config_for(LightingCondition::Day, RoadType::Urban),
               "day-dusk");
  EXPECT_STREQ(core::config_for(LightingCondition::Day, RoadType::Countryside),
               "countryside");
  EXPECT_STREQ(core::config_for(LightingCondition::Dusk, RoadType::Countryside),
               "countryside");
  // Darkness always wins: animals are invisible, taillights are the signal.
  EXPECT_STREQ(core::config_for(LightingCondition::Dark, RoadType::Countryside),
               "dark");
}

class CountrysideRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    core::TrainingBudget budget;
    budget.vehicle_pos = budget.vehicle_neg = 40;
    budget.pedestrian_pos = budget.pedestrian_neg = 30;
    budget.dbn_windows_per_class = 60;
    budget.pairing_scenes = 30;
    budget.animal_pos = budget.animal_neg = 40;  // enable the extension
    core::AdaptiveSystemConfig cfg;
    cfg.run_detectors = false;
    system_ = new core::AdaptiveSystem(core::build_system_models(budget), cfg);
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static core::AdaptiveSystem& system() { return *system_; }

 private:
  static core::AdaptiveSystem* system_;
};

core::AdaptiveSystem* CountrysideRunTest::system_ = nullptr;

TEST_F(CountrysideRunTest, UrbanToCountrysideTriggersReconfig) {
  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.segments = {
      {data::LightingCondition::Day, 15, -1.0, data::RoadType::Urban},
      {data::LightingCondition::Day, 15, -1.0, data::RoadType::Countryside},
  };
  const auto report = system().run(data::DriveSequence(spec));
  ASSERT_EQ(report.reconfig_count(), 1);
  EXPECT_EQ(report.reconfigs[0].config_name, "countryside");
  EXPECT_EQ(report.dropped_vehicle_frames(), 1);
  EXPECT_EQ(report.frames.back().active_config, "countryside");
}

TEST_F(CountrysideRunTest, CountrysideNightUsesDarkConfig) {
  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.segments = {
      {data::LightingCondition::Day, 12, -1.0, data::RoadType::Countryside},
      {data::LightingCondition::Dark, 12, -1.0, data::RoadType::Countryside},
  };
  const auto report = system().run(data::DriveSequence(spec));
  EXPECT_EQ(report.reconfig_count(), 2);  // boot->countryside, then ->dark
  EXPECT_EQ(report.frames.back().active_config, "dark");
}

TEST_F(CountrysideRunTest, CountrysideFramesCarryAnimalTruth) {
  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.animals_per_frame = 2;
  spec.segments = {
      {data::LightingCondition::Day, 5, -1.0, data::RoadType::Countryside}};
  const auto report = system().run(data::DriveSequence(spec));
  for (const auto& f : report.frames) EXPECT_EQ(f.animals_truth, 2);
}

TEST_F(CountrysideRunTest, WithoutAnimalModelNoCountrysideConfig) {
  core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 30;
  budget.pedestrian_pos = budget.pedestrian_neg = 25;
  budget.dbn_windows_per_class = 50;
  budget.pairing_scenes = 25;  // animal_pos = 0: extension disabled
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem base(core::build_system_models(budget), cfg);

  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.segments = {
      {data::LightingCondition::Day, 10, -1.0, data::RoadType::Countryside}};
  const auto report = base.run(data::DriveSequence(spec));
  EXPECT_EQ(report.reconfig_count(), 0);  // stays on day-dusk
  EXPECT_EQ(report.frames.back().active_config, "day-dusk");
}

}  // namespace
}  // namespace avd
