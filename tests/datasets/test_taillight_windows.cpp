#include "avd/datasets/taillight_windows.hpp"

#include <gtest/gtest.h>

#include "avd/image/blobs.hpp"

namespace avd::data {
namespace {

TEST(TaillightWindows, DatasetBalancedAndShuffled) {
  TaillightWindowSpec spec;
  spec.per_class = 50;
  const auto ws = make_taillight_windows(spec);
  EXPECT_EQ(ws.size(), 200u);
  std::array<int, kTaillightClasses> counts{};
  for (const auto& w : ws) {
    ASSERT_GE(w.label, 0);
    ASSERT_LT(w.label, kTaillightClasses);
    ++counts[static_cast<std::size_t>(w.label)];
  }
  for (int c : counts) EXPECT_EQ(c, 50);
  // Shuffled: the first 50 are not all one class.
  int first_label_run = 0;
  for (int i = 0; i < 50; ++i) first_label_run += ws[i].label == ws[0].label;
  EXPECT_LT(first_label_run, 50);
}

TEST(TaillightWindows, PixelsAreBinary) {
  const auto ws = make_taillight_windows({.per_class = 20, .flip_noise = 0.1,
                                          .seed = 5});
  for (const auto& w : ws) {
    EXPECT_EQ(w.pixels.size(), static_cast<std::size_t>(kTaillightInputs));
    for (float v : w.pixels) EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
}

TEST(TaillightWindows, Deterministic) {
  TaillightWindowSpec spec;
  spec.per_class = 10;
  const auto a = make_taillight_windows(spec);
  const auto b = make_taillight_windows(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].pixels, b[i].pixels);
  }
}

TEST(TaillightWindows, ZeroNoiseShapesAreClean) {
  ml::Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const img::ImageU8 win =
        render_taillight_shape(TaillightClass::LargeRound, rng);
    const auto blobs = img::find_blobs(win);
    ASSERT_EQ(blobs.size(), 1u) << "round lamp is one blob";
    EXPECT_GE(blobs[0].area, 5);
    EXPECT_LE(blobs[0].area, 25);
  }
}

TEST(TaillightWindows, SmallRoundIsSmall) {
  ml::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const img::ImageU8 win =
        render_taillight_shape(TaillightClass::SmallRound, rng);
    const auto blobs = img::find_blobs(win);
    ASSERT_EQ(blobs.size(), 1u);
    EXPECT_LE(blobs[0].area, 4);
  }
}

TEST(TaillightWindows, WideBarIsWide) {
  ml::Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const img::ImageU8 win = render_taillight_shape(TaillightClass::WideBar, rng);
    const auto blobs = img::find_blobs(win);
    ASSERT_EQ(blobs.size(), 1u);
    EXPECT_GE(blobs[0].aspect(), 1.5);
  }
}

TEST(TaillightWindows, ClassSizesAreOrdered) {
  // Mean blob area: small < large < bar.
  ml::Rng rng(13);
  auto mean_area = [&](TaillightClass c) {
    double sum = 0.0;
    for (int i = 0; i < 20; ++i) {
      const auto blobs = img::find_blobs(render_taillight_shape(c, rng));
      for (const auto& b : blobs) sum += static_cast<double>(b.area);
    }
    return sum / 20.0;
  };
  const double small = mean_area(TaillightClass::SmallRound);
  const double large = mean_area(TaillightClass::LargeRound);
  const double bar = mean_area(TaillightClass::WideBar);
  EXPECT_LT(small, large);
  EXPECT_LT(large, bar);
}

TEST(TaillightWindows, FlattenValidatesSize) {
  EXPECT_THROW(flatten_window(img::ImageU8(8, 9)), std::invalid_argument);
  const auto flat = flatten_window(img::ImageU8(9, 9, 255));
  EXPECT_EQ(flat.size(), 81u);
  for (float v : flat) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(TaillightWindows, ToStringNames) {
  EXPECT_STREQ(to_string(TaillightClass::NotTaillight), "not-taillight");
  EXPECT_STREQ(to_string(TaillightClass::SmallRound), "small-round");
  EXPECT_STREQ(to_string(TaillightClass::LargeRound), "large-round");
  EXPECT_STREQ(to_string(TaillightClass::WideBar), "wide-bar");
}

TEST(TaillightWindows, FlipNoiseChangesPixels) {
  TaillightWindowSpec clean{.per_class = 20, .flip_noise = 0.0, .seed = 17};
  TaillightWindowSpec noisy{.per_class = 20, .flip_noise = 0.3, .seed = 17};
  const auto a = make_taillight_windows(clean);
  const auto b = make_taillight_windows(noisy);
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diffs += a[i].pixels != b[i].pixels;
  EXPECT_GT(diffs, 10);
}

}  // namespace
}  // namespace avd::data
