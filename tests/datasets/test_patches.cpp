#include "avd/datasets/patches.hpp"

#include <gtest/gtest.h>

#include "avd/image/stats.hpp"

namespace avd::data {
namespace {

TEST(PatchDataset, CountsAndSizes) {
  VehiclePatchSpec spec;
  spec.n_positive = 12;
  spec.n_negative = 8;
  const PatchDataset ds = make_vehicle_patches(spec);
  EXPECT_EQ(ds.size(), 20u);
  EXPECT_EQ(ds.positives(), 12u);
  EXPECT_EQ(ds.negatives(), 8u);
  for (const LabeledPatch& p : ds.patches)
    EXPECT_EQ(p.gray.size(), spec.patch_size);
}

TEST(PatchDataset, Deterministic) {
  VehiclePatchSpec spec;
  spec.n_positive = 5;
  spec.n_negative = 5;
  const PatchDataset a = make_vehicle_patches(spec);
  const PatchDataset b = make_vehicle_patches(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.patches[i].gray, b.patches[i].gray);
    EXPECT_EQ(a.patches[i].label, b.patches[i].label);
  }
}

TEST(PatchDataset, SeedChangesContent) {
  VehiclePatchSpec a, b;
  a.n_positive = b.n_positive = 3;
  a.n_negative = b.n_negative = 0;
  b.seed = a.seed + 1;
  EXPECT_FALSE(make_vehicle_patches(a).patches[0].gray ==
               make_vehicle_patches(b).patches[0].gray);
}

TEST(PatchDataset, DarkFractionMarksPatches) {
  VehiclePatchSpec spec;
  spec.condition = LightingCondition::Dusk;
  spec.n_positive = 40;
  spec.n_negative = 10;
  spec.dark_fraction = 0.25;
  const PatchDataset ds = make_vehicle_patches(spec);
  std::size_t dark = 0;
  for (const LabeledPatch& p : ds.patches) {
    dark += p.very_dark;
    if (p.very_dark) EXPECT_GT(p.label, 0);  // only positives marked
  }
  EXPECT_EQ(dark, 10u);
}

TEST(PatchDataset, WithoutVeryDarkRemovesOnlyDark) {
  VehiclePatchSpec spec;
  spec.condition = LightingCondition::Dusk;
  spec.n_positive = 20;
  spec.n_negative = 15;
  spec.dark_fraction = 0.5;
  const PatchDataset ds = make_vehicle_patches(spec);
  const PatchDataset subset = ds.without_very_dark();
  EXPECT_EQ(subset.size(), 25u);
  EXPECT_EQ(subset.positives(), 10u);
  EXPECT_EQ(subset.negatives(), 15u);
  for (const LabeledPatch& p : subset.patches) EXPECT_FALSE(p.very_dark);
}

TEST(PatchDataset, VeryDarkPatchesAreActuallyDark) {
  VehiclePatchSpec spec;
  spec.condition = LightingCondition::Dusk;
  spec.n_positive = 30;
  spec.n_negative = 0;
  spec.dark_fraction = 0.3;
  const PatchDataset ds = make_vehicle_patches(spec);
  double dark_mean = 0.0, dusk_mean = 0.0;
  int nd = 0, nn = 0;
  for (const LabeledPatch& p : ds.patches) {
    if (p.very_dark) {
      dark_mean += img::mean_intensity(p.gray);
      ++nd;
    } else {
      dusk_mean += img::mean_intensity(p.gray);
      ++nn;
    }
  }
  ASSERT_GT(nd, 0);
  ASSERT_GT(nn, 0);
  EXPECT_LT(dark_mean / nd, dusk_mean / nn);
}

TEST(PatchDataset, ConcatPreservesOrder) {
  VehiclePatchSpec a, b;
  a.n_positive = 3;
  a.n_negative = 2;
  b.n_positive = 1;
  b.n_negative = 4;
  b.seed = 999;
  const PatchDataset ds =
      PatchDataset::concat(make_vehicle_patches(a), make_vehicle_patches(b));
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.positives(), 4u);
}

TEST(PatchDataset, DayPositivesBrighterThanDuskPositives) {
  VehiclePatchSpec day, dusk;
  day.n_positive = dusk.n_positive = 10;
  day.n_negative = dusk.n_negative = 0;
  dusk.condition = LightingCondition::Dusk;
  double dm = 0, km = 0;
  for (const auto& p : make_vehicle_patches(day).patches)
    dm += img::mean_intensity(p.gray);
  for (const auto& p : make_vehicle_patches(dusk).patches)
    km += img::mean_intensity(p.gray);
  EXPECT_GT(dm, km);
}

TEST(PedestrianPatches, CountsAndWindow) {
  PedestrianPatchSpec spec;
  spec.n_positive = 6;
  spec.n_negative = 4;
  const PatchDataset ds = make_pedestrian_patches(spec);
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.positives(), 6u);
  for (const LabeledPatch& p : ds.patches)
    EXPECT_EQ(p.gray.size(), (img::Size{32, 64}));
}

TEST(RenderPatches, SingleCallsProduceRequestedSize) {
  ml::Rng rng(4);
  EXPECT_EQ(render_vehicle_patch(LightingCondition::Day, {48, 48}, rng).size(),
            (img::Size{48, 48}));
  EXPECT_EQ(render_negative_patch(LightingCondition::Dark, {64, 32}, rng).size(),
            (img::Size{64, 32}));
}

// Domain-shift property: a detector's raw pixels differ enough across
// conditions that per-condition means separate cleanly.
class PatchBrightnessSweep
    : public ::testing::TestWithParam<LightingCondition> {};

TEST_P(PatchBrightnessSweep, MeansWithinExpectedBand) {
  VehiclePatchSpec spec;
  spec.condition = GetParam();
  spec.n_positive = 8;
  spec.n_negative = 8;
  const PatchDataset ds = make_vehicle_patches(spec);
  double mean = 0.0;
  for (const auto& p : ds.patches) mean += img::mean_intensity(p.gray);
  mean /= static_cast<double>(ds.size());
  switch (GetParam()) {
    case LightingCondition::Day:
      EXPECT_GT(mean, 60.0);
      break;
    case LightingCondition::Dusk:
      EXPECT_GT(mean, 10.0);
      EXPECT_LT(mean, 70.0);
      break;
    case LightingCondition::Dark:
      EXPECT_LT(mean, 25.0);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Conditions, PatchBrightnessSweep,
                         ::testing::Values(LightingCondition::Day,
                                           LightingCondition::Dusk,
                                           LightingCondition::Dark));

}  // namespace
}  // namespace avd::data
