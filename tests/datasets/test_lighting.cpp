#include "avd/datasets/lighting.hpp"

#include <gtest/gtest.h>

namespace avd::data {
namespace {

TEST(Lighting, ToStringNames) {
  EXPECT_EQ(to_string(LightingCondition::Day), "day");
  EXPECT_EQ(to_string(LightingCondition::Dusk), "dusk");
  EXPECT_EQ(to_string(LightingCondition::Dark), "dark");
}

TEST(Lighting, AmbientMonotoneInLight) {
  const AmbientParams day = ambient_for(LightingCondition::Day);
  const AmbientParams dusk = ambient_for(LightingCondition::Dusk);
  const AmbientParams dark = ambient_for(LightingCondition::Dark);
  EXPECT_GT(day.ambient, dusk.ambient);
  EXPECT_GT(dusk.ambient, dark.ambient);
  EXPECT_GT(day.body_contrast, dusk.body_contrast);
  EXPECT_GT(dusk.body_contrast, dark.body_contrast);
}

TEST(Lighting, NoiseGrowsAsLightFalls) {
  EXPECT_LE(ambient_for(LightingCondition::Day).noise_sigma,
            ambient_for(LightingCondition::Dusk).noise_sigma);
  EXPECT_LE(ambient_for(LightingCondition::Dusk).noise_sigma,
            ambient_for(LightingCondition::Dark).noise_sigma);
}

TEST(Lighting, TaillightsLitAtNightOnly) {
  EXPECT_FALSE(ambient_for(LightingCondition::Day).taillights_lit);
  EXPECT_TRUE(ambient_for(LightingCondition::Dusk).taillights_lit);
  EXPECT_TRUE(ambient_for(LightingCondition::Dark).taillights_lit);
}

TEST(Lighting, ShadowOnlyMeaningfulInDaylight) {
  EXPECT_GT(ambient_for(LightingCondition::Day).shadow_strength, 0.3);
  EXPECT_LT(ambient_for(LightingCondition::Dark).shadow_strength, 0.01);
}

TEST(Lighting, NominalLevelsRoundTripThroughClassifier) {
  for (auto c : {LightingCondition::Day, LightingCondition::Dusk,
                 LightingCondition::Dark}) {
    EXPECT_EQ(condition_for_light_level(nominal_light_level(c)), c)
        << to_string(c);
  }
}

TEST(Lighting, ConditionBoundaries) {
  EXPECT_EQ(condition_for_light_level(1.0), LightingCondition::Day);
  EXPECT_EQ(condition_for_light_level(0.56), LightingCondition::Day);
  EXPECT_EQ(condition_for_light_level(0.55), LightingCondition::Dusk);
  EXPECT_EQ(condition_for_light_level(0.19), LightingCondition::Dusk);
  EXPECT_EQ(condition_for_light_level(0.18), LightingCondition::Dark);
  EXPECT_EQ(condition_for_light_level(0.0), LightingCondition::Dark);
}

}  // namespace
}  // namespace avd::data
