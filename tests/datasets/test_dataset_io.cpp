#include "avd/datasets/dataset_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace avd::data {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "avd_dataset_io").string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  VehiclePatchSpec spec;
  spec.condition = LightingCondition::Dusk;
  spec.n_positive = 6;
  spec.n_negative = 4;
  spec.dark_fraction = 0.5;
  const PatchDataset original = make_vehicle_patches(spec);

  save_dataset(original, dir_);
  const PatchDataset back = load_dataset(dir_);

  EXPECT_EQ(back.condition, LightingCondition::Dusk);
  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(back.patches[i].gray, original.patches[i].gray) << i;
    EXPECT_EQ(back.patches[i].label, original.patches[i].label) << i;
    EXPECT_EQ(back.patches[i].very_dark, original.patches[i].very_dark) << i;
  }
}

TEST_F(DatasetIoTest, FilesOnDiskAreReadablePgms) {
  VehiclePatchSpec spec;
  spec.n_positive = 2;
  spec.n_negative = 1;
  save_dataset(make_vehicle_patches(spec), dir_);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/index.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/patch_00000.pgm"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/patch_00002.pgm"));
}

TEST_F(DatasetIoTest, MissingDirectoryThrows) {
  EXPECT_THROW((void)load_dataset(dir_ + "/nope"), std::runtime_error);
}

TEST_F(DatasetIoTest, BadHeaderThrows) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/index.txt") << "not-a-dataset 3 day\n";
  EXPECT_THROW((void)load_dataset(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, BadConditionThrows) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/index.txt") << "avd-patches 0 noon\n";
  EXPECT_THROW((void)load_dataset(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, TruncatedIndexThrows) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/index.txt") << "avd-patches 2 day\npatch.pgm 1 0\n";
  EXPECT_THROW((void)load_dataset(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, BadLabelThrows) {
  VehiclePatchSpec spec;
  spec.n_positive = 1;
  spec.n_negative = 0;
  save_dataset(make_vehicle_patches(spec), dir_);
  std::ofstream(dir_ + "/index.txt")
      << "avd-patches 1 day\npatch_00000.pgm 7 0\n";
  EXPECT_THROW((void)load_dataset(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, MissingPatchFileThrows) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ + "/index.txt")
      << "avd-patches 1 day\nmissing.pgm 1 0\n";
  EXPECT_THROW((void)load_dataset(dir_), std::runtime_error);
}

TEST_F(DatasetIoTest, EmptyDatasetRoundTrips) {
  PatchDataset empty;
  empty.condition = LightingCondition::Dark;
  save_dataset(empty, dir_);
  const PatchDataset back = load_dataset(dir_);
  EXPECT_EQ(back.size(), 0u);
  EXPECT_EQ(back.condition, LightingCondition::Dark);
}

}  // namespace
}  // namespace avd::data
