#include "avd/datasets/scene.hpp"

#include <gtest/gtest.h>

#include "avd/image/color.hpp"
#include "avd/image/stats.hpp"
#include "avd/image/threshold.hpp"

namespace avd::data {
namespace {

TEST(VehicleSpec, TaillightBoxesInsideBody) {
  VehicleSpec v;
  v.body = {100, 50, 64, 48};
  const auto [left, right] = v.taillight_boxes();
  EXPECT_TRUE(v.body.contains(left));
  EXPECT_TRUE(v.body.contains(right));
  EXPECT_LT(left.right(), right.x);  // disjoint, left of right
  EXPECT_EQ(left.y, right.y);        // level
}

TEST(VehicleSpec, TaillightBoxesScaleWithBody) {
  VehicleSpec small, big;
  small.body = {0, 0, 28, 22};
  big.body = {0, 0, 280, 220};
  EXPECT_LT(small.taillight_boxes().first.width,
            big.taillight_boxes().first.width);
}

TEST(RenderScene, FrameSizeAndDeterminism) {
  SceneGenerator gen(LightingCondition::Day, 42);
  const SceneSpec spec = gen.random_scene({320, 180}, 2, 1);
  const img::RgbImage a = render_scene(spec);
  const img::RgbImage b = render_scene(spec);
  EXPECT_EQ(a.size(), (img::Size{320, 180}));
  EXPECT_EQ(a.r(), b.r());  // same spec -> identical pixels
  EXPECT_EQ(a.g(), b.g());
  EXPECT_EQ(a.b(), b.b());
}

TEST(RenderScene, BrightnessFollowsCondition) {
  auto mean_of = [](LightingCondition c) {
    SceneGenerator gen(c, 7);
    const img::RgbImage frame = render_scene(gen.random_scene({160, 90}, 1));
    return img::mean_intensity(img::rgb_to_gray(frame));
  };
  const double day = mean_of(LightingCondition::Day);
  const double dusk = mean_of(LightingCondition::Dusk);
  const double dark = mean_of(LightingCondition::Dark);
  EXPECT_GT(day, dusk);
  EXPECT_GT(dusk, dark);
  EXPECT_LT(dark, 30.0);
}

TEST(RenderScene, DarkSceneTaillightsPassChromaGate) {
  SceneGenerator gen(LightingCondition::Dark, 11);
  SceneSpec spec = gen.random_scene({240, 135}, 1);
  const img::RgbImage frame = render_scene(spec);
  const img::ImageU8 mask =
      img::taillight_roi_mask(img::rgb_to_ycbcr(frame));
  // Both taillights of the vehicle must light up the ROI mask.
  const auto [lb, rb] = spec.vehicles[0].taillight_boxes();
  EXPECT_GT(img::count_nonzero(mask.crop(img::inflated(lb, 1))), 0u);
  EXPECT_GT(img::count_nonzero(mask.crop(img::inflated(rb, 1))), 0u);
}

TEST(RenderScene, DayTaillightsDoNotPassChromaGate) {
  SceneGenerator gen(LightingCondition::Day, 11);
  SceneSpec spec = gen.random_scene({240, 135}, 1);
  spec.distractors.clear();
  const img::RgbImage frame = render_scene(spec);
  const img::ImageU8 mask =
      img::taillight_roi_mask(img::rgb_to_ycbcr(frame));
  const auto [lb, rb] = spec.vehicles[0].taillight_boxes();
  EXPECT_EQ(img::count_nonzero(mask.crop(lb)), 0u);
  EXPECT_EQ(img::count_nonzero(mask.crop(rb)), 0u);
}

TEST(RenderScene, ForcedLightsOverrideAmbient) {
  SceneSpec spec;
  spec.condition = LightingCondition::Day;
  spec.frame_size = {100, 100};
  spec.horizon_y = 20;
  VehicleSpec v;
  v.body = {20, 40, 60, 45};
  v.force_lights = true;
  v.taillights_lit = true;
  spec.vehicles.push_back(v);
  const img::RgbImage frame = render_scene(spec);
  const auto [lb, rb] = v.taillight_boxes();
  // Lit lamp core is saturated red even in daylight.
  EXPECT_GT(frame.pixel(lb.center().x, lb.center().y).r, 200);
}

TEST(RenderScene, AmbientOverrideRespected) {
  SceneGenerator gen(LightingCondition::Day, 3);
  SceneSpec spec = gen.random_scene({160, 90}, 1);
  AmbientParams pitch_black = ambient_for(LightingCondition::Dark);
  pitch_black.noise_sigma = 0.0;
  spec.ambient_override = pitch_black;
  const img::RgbImage frame = render_scene(spec);
  EXPECT_LT(img::mean_intensity(img::rgb_to_gray(frame)), 25.0);
}

TEST(RenderScene, NoiseSeedChangesPixelsOnly) {
  SceneGenerator gen(LightingCondition::Day, 9);
  SceneSpec spec = gen.random_scene({120, 68}, 1);
  const img::RgbImage a = render_scene(spec);
  spec.noise_seed += 1;
  const img::RgbImage b = render_scene(spec);
  EXPECT_FALSE(a.r() == b.r());
  // But the underlying structure is the same: means stay close.
  EXPECT_NEAR(img::mean_intensity(a.r()), img::mean_intensity(b.r()), 1.0);
}

TEST(SceneGenerator, VehiclesInsideFrameMostly) {
  SceneGenerator gen(LightingCondition::Day, 21);
  for (int i = 0; i < 20; ++i) {
    const SceneSpec spec = gen.random_scene({640, 360}, 3);
    EXPECT_EQ(spec.vehicles.size(), 3u);
    for (const VehicleSpec& v : spec.vehicles) {
      EXPECT_GE(v.body.x, 0);
      EXPECT_LE(v.body.right(), 640);
      EXPECT_GT(v.body.width, 0);
      // Vehicles sit on the road: bottom below the horizon.
      EXPECT_GT(v.body.bottom(), spec.horizon_y);
    }
  }
}

TEST(SceneGenerator, NearVehiclesLowerAndLarger) {
  // Statistically: bottom position correlates with width across draws.
  SceneGenerator gen(LightingCondition::Day, 33);
  double cov = 0.0, mw = 0.0, mb = 0.0;
  std::vector<std::pair<int, int>> samples;
  for (int i = 0; i < 60; ++i) {
    const VehicleSpec v = gen.random_vehicle({640, 360}, 140);
    samples.push_back({v.body.width, v.body.bottom()});
    mw += v.body.width;
    mb += v.body.bottom();
  }
  mw /= samples.size();
  mb /= samples.size();
  for (auto [w, b] : samples) cov += (w - mw) * (b - mb);
  EXPECT_GT(cov, 0.0);
}

TEST(SceneGenerator, DistractorsOnlyWhenLightsOn) {
  SceneGenerator day(LightingCondition::Day, 5);
  EXPECT_TRUE(day.random_scene({320, 180}, 1).distractors.empty());
  SceneGenerator dark(LightingCondition::Dark, 5);
  bool any = false;
  for (int i = 0; i < 10; ++i)
    any |= !dark.random_scene({320, 180}, 1).distractors.empty();
  EXPECT_TRUE(any);
}

TEST(SceneGenerator, PedestriansPlacedOnRoad) {
  SceneGenerator gen(LightingCondition::Day, 17);
  const SceneSpec spec = gen.random_scene({320, 180}, 0, 3);
  EXPECT_EQ(spec.pedestrians.size(), 3u);
  for (const PedestrianSpec& p : spec.pedestrians)
    EXPECT_GT(p.body.bottom(), spec.horizon_y);
}

TEST(SceneGenerator, SeedReproducibility) {
  SceneGenerator a(LightingCondition::Dusk, 99), b(LightingCondition::Dusk, 99);
  const SceneSpec sa = a.random_scene({320, 180}, 2);
  const SceneSpec sb = b.random_scene({320, 180}, 2);
  ASSERT_EQ(sa.vehicles.size(), sb.vehicles.size());
  for (std::size_t i = 0; i < sa.vehicles.size(); ++i)
    EXPECT_EQ(sa.vehicles[i].body, sb.vehicles[i].body);
}


TEST(Scenario, EmptyRoadHasNoTargets) {
  const SceneSpec s = make_scenario(ScenarioPreset::EmptyRoad,
                                    LightingCondition::Day, {320, 180}, 1);
  EXPECT_TRUE(s.vehicles.empty());
  EXPECT_TRUE(s.pedestrians.empty());
  EXPECT_TRUE(s.animals.empty());
}

TEST(Scenario, DenseTrafficIsDense) {
  const SceneSpec s = make_scenario(ScenarioPreset::DenseTraffic,
                                    LightingCondition::Dusk, {320, 180}, 2);
  EXPECT_GE(s.vehicles.size(), 4u);
  EXPECT_GE(s.pedestrians.size(), 1u);
}

TEST(Scenario, CountrysideHasAnimalsNoBuildings) {
  const SceneSpec s = make_scenario(ScenarioPreset::CountrysideRoad,
                                    LightingCondition::Day, {320, 180}, 3);
  EXPECT_GE(s.animals.size(), 1u);
  EXPECT_TRUE(s.clutter.empty());
  for (const AnimalSpec& a : s.animals) {
    EXPECT_GT(a.body.width, 0);
    EXPECT_GT(a.body.bottom(), s.horizon_y);
  }
}

TEST(Scenario, PresetsRenderable) {
  for (auto preset :
       {ScenarioPreset::EmptyRoad, ScenarioPreset::LightTraffic,
        ScenarioPreset::DenseTraffic, ScenarioPreset::CountrysideRoad}) {
    const SceneSpec s =
        make_scenario(preset, LightingCondition::Dark, {160, 90}, 4);
    EXPECT_NO_THROW((void)render_scene(s));
  }
}

}  // namespace
}  // namespace avd::data
