#include "avd/datasets/sequence.hpp"

#include <gtest/gtest.h>

namespace avd::data {
namespace {

SequenceSpec small_spec() {
  SequenceSpec spec;
  spec.frame_size = {160, 90};
  spec.segments = {{LightingCondition::Day, 5},
                   {LightingCondition::Dusk, 3},
                   {LightingCondition::Dark, 4}};
  return spec;
}

TEST(DriveSequence, FrameCountIsSumOfSegments) {
  EXPECT_EQ(DriveSequence(small_spec()).frame_count(), 12);
}

TEST(DriveSequence, EmptySegmentsThrow) {
  SequenceSpec spec;
  EXPECT_THROW(DriveSequence{spec}, std::invalid_argument);
  spec.segments = {{LightingCondition::Day, 0}};
  EXPECT_THROW(DriveSequence{spec}, std::invalid_argument);
}

TEST(DriveSequence, FrameIndexValidation) {
  const DriveSequence seq(small_spec());
  EXPECT_THROW((void)seq.frame(-1), std::out_of_range);
  EXPECT_THROW((void)seq.frame(12), std::out_of_range);
  EXPECT_NO_THROW((void)seq.frame(11));
}

TEST(DriveSequence, ConditionFollowsSegments) {
  const DriveSequence seq(small_spec());
  EXPECT_EQ(seq.frame(0).condition, LightingCondition::Day);
  EXPECT_EQ(seq.frame(4).condition, LightingCondition::Day);
  EXPECT_EQ(seq.frame(5).condition, LightingCondition::Dusk);
  EXPECT_EQ(seq.frame(7).condition, LightingCondition::Dusk);
  EXPECT_EQ(seq.frame(8).condition, LightingCondition::Dark);
  EXPECT_EQ(seq.frame(11).condition, LightingCondition::Dark);
}

TEST(DriveSequence, LightLevelDefaultsToNominal) {
  const DriveSequence seq(small_spec());
  EXPECT_DOUBLE_EQ(seq.frame(0).light_level,
                   nominal_light_level(LightingCondition::Day));
  EXPECT_DOUBLE_EQ(seq.frame(9).light_level,
                   nominal_light_level(LightingCondition::Dark));
}

TEST(DriveSequence, LightLevelOverride) {
  SequenceSpec spec = small_spec();
  spec.segments[1].light_level = 0.42;
  const DriveSequence seq(spec);
  EXPECT_DOUBLE_EQ(seq.frame(6).light_level, 0.42);
}

TEST(DriveSequence, FramesAreIndexDeterministic) {
  const DriveSequence seq(small_spec());
  // Querying out of order yields identical frames.
  const SequenceFrame late = seq.frame(9);
  const SequenceFrame early = seq.frame(2);
  const SequenceFrame late_again = seq.frame(9);
  ASSERT_EQ(late.scene.vehicles.size(), late_again.scene.vehicles.size());
  for (std::size_t i = 0; i < late.scene.vehicles.size(); ++i)
    EXPECT_EQ(late.scene.vehicles[i].body, late_again.scene.vehicles[i].body);
  (void)early;
}

TEST(DriveSequence, AdjacentFramesDiffer) {
  const DriveSequence seq(small_spec());
  const SequenceFrame a = seq.frame(0);
  const SequenceFrame b = seq.frame(1);
  // Same segment, different random scenes.
  EXPECT_NE(a.scene.noise_seed, b.scene.noise_seed);
}

TEST(DriveSequence, RenderMatchesSceneGroundTruth) {
  const DriveSequence seq(small_spec());
  const img::RgbImage frame = seq.render(0);
  EXPECT_EQ(frame.size(), (img::Size{160, 90}));
}

TEST(DriveSequence, CanonicalDriveShape) {
  const SequenceSpec spec = DriveSequence::canonical_drive({320, 180}, 25);
  const DriveSequence seq(spec);
  EXPECT_EQ(seq.frame_count(), 6 * 25);
  // Starts in day, passes a dusk-classified tunnel, ends in dusk.
  EXPECT_EQ(seq.frame(0).condition, LightingCondition::Day);
  EXPECT_EQ(seq.frame(25).condition, LightingCondition::Dusk);   // tunnel
  EXPECT_EQ(seq.frame(60).condition, LightingCondition::Day);
  EXPECT_EQ(seq.frame(110).condition, LightingCondition::Dark);
  EXPECT_EQ(seq.frame(130).condition, LightingCondition::Dusk);
}

TEST(DriveSequence, CoherentMotionDriftsSmoothly) {
  SequenceSpec spec = small_spec();
  spec.coherent_motion = true;
  const DriveSequence seq(spec);
  // Within a segment: same vehicle count, small per-frame displacement.
  const auto f0 = seq.frame(0);
  const auto f1 = seq.frame(1);
  const auto f2 = seq.frame(2);
  ASSERT_EQ(f0.scene.vehicles.size(), f1.scene.vehicles.size());
  for (std::size_t i = 0; i < f0.scene.vehicles.size(); ++i) {
    const int dx01 = f1.scene.vehicles[i].body.x - f0.scene.vehicles[i].body.x;
    const int dx12 = f2.scene.vehicles[i].body.x - f1.scene.vehicles[i].body.x;
    EXPECT_LE(std::abs(dx01), 3);
    EXPECT_EQ(dx01, dx12);  // constant velocity (unless clamped at border)
  }
}

TEST(DriveSequence, CoherentMotionDeterministic) {
  SequenceSpec spec = small_spec();
  spec.coherent_motion = true;
  const DriveSequence a(spec), b(spec);
  const auto fa = a.frame(3);
  const auto fb = b.frame(3);
  ASSERT_EQ(fa.scene.vehicles.size(), fb.scene.vehicles.size());
  for (std::size_t i = 0; i < fa.scene.vehicles.size(); ++i)
    EXPECT_EQ(fa.scene.vehicles[i].body, fb.scene.vehicles[i].body);
}

TEST(DriveSequence, CoherentMotionKeepsVehiclesNearFrame) {
  SequenceSpec spec;
  spec.frame_size = {160, 90};
  spec.coherent_motion = true;
  spec.segments = {{LightingCondition::Day, 60}};
  const DriveSequence seq(spec);
  for (int f = 0; f < 60; f += 10) {
    for (const VehicleSpec& v : seq.frame(f).scene.vehicles) {
      EXPECT_GT(v.body.right(), 0);
      EXPECT_LT(v.body.x, 160);
    }
  }
}

TEST(DriveSequence, VehiclesPerFrameHonored) {
  SequenceSpec spec = small_spec();
  spec.vehicles_per_frame = 4;
  spec.pedestrians_per_frame = 2;
  const DriveSequence seq(spec);
  EXPECT_EQ(seq.frame(3).scene.vehicles.size(), 4u);
  EXPECT_EQ(seq.frame(3).scene.pedestrians.size(), 2u);
}

}  // namespace
}  // namespace avd::data
