#include "avd/soc/sim_time.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(Duration, UnitConstructors) {
  EXPECT_EQ(Duration::from_ns(1).ps, 1000u);
  EXPECT_EQ(Duration::from_us(1).ps, 1000000u);
  EXPECT_EQ(Duration::from_ms(1).ps, 1000000000u);
  EXPECT_EQ(Duration::from_ps(7).ps, 7u);
}

TEST(Duration, CyclesOfCommonClocks) {
  // 100 MHz -> 10 ns period.
  EXPECT_EQ(Duration::cycles(1, 100).ps, 10000u);
  // 125 MHz -> 8 ns period, exactly representable.
  EXPECT_EQ(Duration::cycles(1, 125).ps, 8000u);
  EXPECT_EQ(Duration::cycles(125000000, 125).ps, 1000000000000u);  // 1 s
}

TEST(Duration, Conversions) {
  const Duration d = Duration::from_us(1500);
  EXPECT_DOUBLE_EQ(d.as_ns(), 1500000.0);
  EXPECT_DOUBLE_EQ(d.as_us(), 1500.0);
  EXPECT_DOUBLE_EQ(d.as_ms(), 1.5);
  EXPECT_DOUBLE_EQ(d.as_seconds(), 0.0015);
}

TEST(Duration, Arithmetic) {
  Duration d = Duration::from_ns(100);
  d += Duration::from_ns(50);
  EXPECT_EQ(d.ps, 150000u);
  EXPECT_EQ((Duration::from_ns(10) * 5).ps, 50000u);
  EXPECT_EQ((Duration::from_ns(10) + Duration::from_ns(1)).ps, 11000u);
}

TEST(Duration, Comparison) {
  EXPECT_LT(Duration::from_ns(10), Duration::from_ns(11));
  EXPECT_EQ(Duration::from_us(1), Duration::from_ns(1000));
}

TEST(TimePoint, Arithmetic) {
  TimePoint t{1000};
  t += Duration::from_ps(500);
  EXPECT_EQ(t.ps, 1500u);
  EXPECT_EQ((t + Duration::from_ps(500)).ps, 2000u);
  EXPECT_EQ((TimePoint{3000} - TimePoint{1000}).ps, 2000u);
  EXPECT_LT(TimePoint{1}, TimePoint{2});
}

TEST(Throughput, KnownValues) {
  // 400 MB in one second = 400 MB/s.
  EXPECT_NEAR(throughput_mbps(400000000, Duration::from_ms(1000)), 400.0, 1e-9);
  // 8 MiB in 20 ms ~ 419 MB/s.
  EXPECT_NEAR(throughput_mbps(8 * 1024 * 1024, Duration::from_ms(20)), 419.4,
              0.1);
  EXPECT_DOUBLE_EQ(throughput_mbps(100, Duration{}), 0.0);
}

TEST(Throughput, IcapTheoreticalCeiling) {
  // 32 bits @ 100 MHz = 4 bytes every 10 ns = 400 MB/s (paper §IV-A).
  const Duration per_word = Duration::cycles(1, 100);
  EXPECT_NEAR(throughput_mbps(4, per_word), 400.0, 1e-9);
}

}  // namespace
}  // namespace avd::soc
