#include "avd/soc/crc.hpp"

#include <gtest/gtest.h>

#include "avd/soc/bitstream.hpp"
#include "avd/soc/reconfig.hpp"

namespace avd::soc {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  std::vector<std::uint8_t> v;
  for (const char* p = s; *p; ++p) v.push_back(static_cast<std::uint8_t>(*p));
  return v;
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 check value: "123456789" -> 0xCBF43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
  // Empty input -> 0.
  EXPECT_EQ(crc32({}), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  Crc32 inc;
  inc.update(std::span(data).first(10));
  inc.update(std::span(data).subspan(10));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, ResetRestores) {
  Crc32 crc;
  crc.update(bytes_of("junk"));
  crc.reset();
  crc.update(bytes_of("123456789"));
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, SingleBitFlipChangesValue) {
  auto data = bytes_of("configuration frame data");
  const std::uint32_t before = crc32(data);
  data[7] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

TEST(BitstreamIntegrity, AttachPayloadSetsCrc) {
  PartialBitstream bits{"dark", 4096};
  EXPECT_FALSE(bits.has_payload());
  EXPECT_TRUE(bits.verify_integrity());  // size-only: vacuously OK
  bits.attach_payload(42);
  EXPECT_TRUE(bits.has_payload());
  EXPECT_EQ(bits.payload.size(), 4096u);
  EXPECT_TRUE(bits.verify_integrity());
}

TEST(BitstreamIntegrity, PayloadDeterministicInSeed) {
  PartialBitstream a{"x", 1024}, b{"x", 1024}, c{"x", 1024};
  a.attach_payload(7);
  b.attach_payload(7);
  c.attach_payload(8);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_NE(a.payload, c.payload);
}

TEST(BitstreamIntegrity, CorruptionDetected) {
  PartialBitstream bits{"dark", 4096};
  bits.attach_payload(1);
  bits.payload[100] ^= 0xFF;
  EXPECT_FALSE(bits.verify_integrity());
}

TEST(BitstreamIntegrity, ControllerRejectsCorruptedBitstream) {
  PartialBitstream bits{"dark", 1 << 20};
  bits.attach_payload(3);
  ReconfigController ctrl(default_platform(), ReconfigMethod::PlDmaIcap);
  ctrl.stage(bits);
  // Clean bitstream reconfigures fine.
  EXPECT_NO_THROW((void)ctrl.reconfigure({0}, bits));
  EXPECT_EQ(ctrl.active_config(), "dark");

  // Corrupt a byte: the controller must refuse and keep the old config.
  PartialBitstream day{"day-dusk", 1 << 20};
  day.attach_payload(4);
  ctrl.stage(day);
  day.payload[5] ^= 0x80;
  EXPECT_THROW(
      (void)ctrl.reconfigure(TimePoint{} + Duration::from_ms(100), day),
      std::runtime_error);
  EXPECT_EQ(ctrl.active_config(), "dark");  // unchanged
  // And the rejection is visible in the log.
  bool rejected = false;
  for (const Event& e : ctrl.log().events())
    rejected |= e.message.find("CRC mismatch") != std::string::npos;
  EXPECT_TRUE(rejected);
}

}  // namespace
}  // namespace avd::soc
