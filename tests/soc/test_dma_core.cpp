#include "avd/soc/dma_core.hpp"

#include <gtest/gtest.h>

#include "avd/soc/zynq.hpp"

namespace avd::soc {
namespace {

class DmaCoreTest : public ::testing::Test {
 protected:
  DmaCoreTest()
      : line_(irq_.add_line("dma")),
        dma_("dma", test_path(), &irq_, line_, &log_) {}

  static TransferPath test_path() {
    TransferPath p;
    p.name = "test";
    p.segments = {{"port", Duration::from_ns(100), 400.0}};
    p.burst_bytes = 1024;
    p.setup = Duration::from_us(1);
    return p;
  }

  void start_mm2s(std::uint32_t bytes, TimePoint now = {0}) {
    dma_.write(dma_reg::kMm2sCr, dma_bit::kRunStop | dma_bit::kIocIrqEn, now);
    dma_.write(dma_reg::kMm2sSa, 0x1000, now);
    dma_.write(dma_reg::kMm2sLength, bytes, now);
  }

  InterruptController irq_;
  EventLog log_;
  int line_;
  DmaCore dma_;
};

TEST_F(DmaCoreTest, ResetStateHaltedAndIdle) {
  EXPECT_TRUE(dma_.read(dma_reg::kMm2sSr, {0}) & dma_bit::kHalted);
  EXPECT_TRUE(dma_.read(dma_reg::kMm2sSr, {0}) & dma_bit::kIdle);
  EXPECT_FALSE(dma_.last_transfer().has_value());
}

TEST_F(DmaCoreTest, LengthWriteStartsTransfer) {
  start_mm2s(1 << 20);
  ASSERT_TRUE(dma_.last_transfer().has_value());
  EXPECT_EQ(dma_.last_transfer()->bytes, 1u << 20);
  EXPECT_EQ(dma_.last_transfer()->address, 0x1000u);
  EXPECT_TRUE(dma_.last_transfer()->mm2s);
  EXPECT_GT(dma_.last_transfer()->completes.ps, 0u);
}

TEST_F(DmaCoreTest, BusyUntilModeledCompletion) {
  start_mm2s(1 << 20);
  const TimePoint done = dma_.last_transfer()->completes;
  EXPECT_FALSE(dma_.idle(true, TimePoint{done.ps - 1}));
  EXPECT_TRUE(dma_.idle(true, done));
  // Status register reflects the same.
  EXPECT_FALSE(dma_.read(dma_reg::kMm2sSr, TimePoint{done.ps - 1}) &
               dma_bit::kIdle);
  EXPECT_TRUE(dma_.read(dma_reg::kMm2sSr, done) & dma_bit::kIdle);
}

TEST_F(DmaCoreTest, CompletionRaisesIrqAtFinishTime) {
  start_mm2s(1 << 20);
  const TimePoint done = dma_.last_transfer()->completes;
  EXPECT_TRUE(irq_.is_pending(line_));
  const auto svc = irq_.service_next({0});
  EXPECT_TRUE(svc.handled);
  EXPECT_GE(svc.handler_entry.ps, done.ps);
}

TEST_F(DmaCoreTest, NoIrqWhenDisabled) {
  dma_.write(dma_reg::kMm2sCr, dma_bit::kRunStop, {0});  // IOC IRQ not enabled
  dma_.write(dma_reg::kMm2sSa, 0, {0});
  dma_.write(dma_reg::kMm2sLength, 4096, {0});
  EXPECT_FALSE(irq_.is_pending(line_));
}

TEST_F(DmaCoreTest, StartWhileStoppedThrows) {
  EXPECT_THROW(dma_.write(dma_reg::kMm2sLength, 4096, {0}), std::logic_error);
}

TEST_F(DmaCoreTest, StartWhileBusyThrows) {
  start_mm2s(1 << 20);
  EXPECT_THROW(dma_.write(dma_reg::kMm2sLength, 4096, {0}), std::logic_error);
  // After completion, a new transfer is fine.
  const TimePoint done = dma_.last_transfer()->completes;
  EXPECT_NO_THROW(dma_.write(dma_reg::kMm2sLength, 4096, done));
}

TEST_F(DmaCoreTest, ZeroLengthThrows) {
  dma_.write(dma_reg::kMm2sCr, dma_bit::kRunStop, {0});
  EXPECT_THROW(dma_.write(dma_reg::kMm2sLength, 0, {0}),
               std::invalid_argument);
}

TEST_F(DmaCoreTest, ChannelsAreIndependent) {
  start_mm2s(1 << 20);
  // S2MM channel can run concurrently.
  dma_.write(dma_reg::kS2mmCr, dma_bit::kRunStop, {0});
  dma_.write(dma_reg::kS2mmDa, 0x2000, {0});
  EXPECT_NO_THROW(dma_.write(dma_reg::kS2mmLength, 4096, {0}));
  EXPECT_FALSE(dma_.last_transfer()->mm2s);
  EXPECT_EQ(dma_.last_transfer()->address, 0x2000u);
}

TEST_F(DmaCoreTest, IocBitWriteOneToClear) {
  start_mm2s(4096);
  const TimePoint done = dma_.last_transfer()->completes;
  EXPECT_TRUE(dma_.read(dma_reg::kMm2sSr, done) & dma_bit::kIocIrq);
  dma_.write(dma_reg::kMm2sSr, dma_bit::kIocIrq, done);
  EXPECT_FALSE(dma_.read(dma_reg::kMm2sSr, done) & dma_bit::kIocIrq);
}

TEST_F(DmaCoreTest, SoftResetClearsChannel) {
  start_mm2s(1 << 20);
  dma_.write(dma_reg::kMm2sCr, dma_bit::kReset, {0});
  EXPECT_TRUE(dma_.read(dma_reg::kMm2sSr, {0}) & dma_bit::kHalted);
  EXPECT_TRUE(dma_.idle(true, {0}));
}

TEST_F(DmaCoreTest, BadOffsetThrows) {
  EXPECT_THROW((void)dma_.read(0x5C, {0}), std::out_of_range);
  EXPECT_THROW(dma_.write(0x08, 1, {0}), std::out_of_range);
}

TEST_F(DmaCoreTest, TransferTimeMatchesPathModel) {
  start_mm2s(1 << 20);
  const TransferRecord expected = model_transfer(test_path(), 1 << 20);
  EXPECT_EQ((dma_.last_transfer()->completes - dma_.last_transfer()->started).ps,
            expected.elapsed.ps);
}

TEST_F(DmaCoreTest, TransfersLogged) {
  start_mm2s(4096);
  ASSERT_GE(log_.size(), 1u);
  EXPECT_NE(log_.events()[0].message.find("MM2S"), std::string::npos);
}

}  // namespace
}  // namespace avd::soc
