#include "avd/soc/resources.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(Resources, DeviceDefaultsMatchPaperAvailableRow) {
  const DeviceResources d;
  EXPECT_EQ(d.lut, 277400);
  EXPECT_EQ(d.ff, 554800);
  EXPECT_EQ(d.bram, 755);
  EXPECT_EQ(d.dsp, 2020);
}

TEST(Resources, ModuleAddition) {
  ModuleResources a{"a", 100, 200, 3, 4};
  const ModuleResources b{"b", 1, 2, 3, 4};
  a += b;
  EXPECT_EQ(a.lut, 101);
  EXPECT_EQ(a.ff, 202);
  EXPECT_EQ(a.bram, 6);
  EXPECT_EQ(a.dsp, 8);
  const ModuleResources c = a + b;
  EXPECT_EQ(c.lut, 102);
}

TEST(Resources, UtilizationRounds) {
  const DeviceResources d;
  const UtilizationRow r = utilization("x", {"x", 58254, 55480, 91, 20}, d);
  EXPECT_EQ(r.lut_pct, 21);
  EXPECT_EQ(r.ff_pct, 10);
  EXPECT_EQ(r.bram_pct, 12);
  EXPECT_EQ(r.dsp_pct, 1);
}

// Table II row-by-row reproduction.
class Table2Test : public ::testing::Test {
 protected:
  static std::vector<UtilizationRow> rows() { return table2_rows(); }
  static const UtilizationRow& row(const std::string& name) {
    static std::vector<UtilizationRow> all = rows();
    for (const auto& r : all)
      if (r.name == name) return r;
    throw std::runtime_error("row not found: " + name);
  }
};

TEST_F(Table2Test, StaticDesignRow) {
  const UtilizationRow& r = row("Static Design");
  EXPECT_EQ(r.lut_pct, 21);
  EXPECT_EQ(r.ff_pct, 10);
  EXPECT_EQ(r.bram_pct, 12);
  EXPECT_EQ(r.dsp_pct, 1);
}

TEST_F(Table2Test, ReconfigurablePartitionRow) {
  const UtilizationRow& r = row("Reconfigurable Partition");
  EXPECT_EQ(r.lut_pct, 45);
  EXPECT_EQ(r.ff_pct, 45);
  EXPECT_EQ(r.bram_pct, 40);
  EXPECT_EQ(r.dsp_pct, 40);
}

TEST_F(Table2Test, DayDuskRow) {
  const UtilizationRow& r = row("Day and Dusk Design");
  EXPECT_EQ(r.lut_pct, 19);
  EXPECT_EQ(r.ff_pct, 9);
  EXPECT_EQ(r.bram_pct, 11);
  EXPECT_EQ(r.dsp_pct, 1);
}

TEST_F(Table2Test, DarkRow) {
  const UtilizationRow& r = row("Dark Design");
  EXPECT_EQ(r.lut_pct, 40);
  EXPECT_EQ(r.ff_pct, 23);
  EXPECT_EQ(r.bram_pct, 19);
  EXPECT_EQ(r.dsp_pct, 29);
}

TEST_F(Table2Test, TotalRowIsStaticPlusPartition) {
  const UtilizationRow& r = row("Total Usage");
  EXPECT_EQ(r.lut_pct, 66);
  EXPECT_EQ(r.ff_pct, 55);
  EXPECT_EQ(r.bram_pct, 52);
  EXPECT_EQ(r.dsp_pct, 41);
}

TEST(Floorplan, PartitionFitsBothConfigurations) {
  const DeviceResources device;
  const ModuleResources partition =
      floorplan_partition(dark_blocks(), device, {});
  EXPECT_TRUE(fits(sum_modules(dark_blocks()), partition));
  EXPECT_TRUE(fits(sum_modules(day_dusk_blocks()), partition));
}

TEST(Floorplan, DarkIsTheLargerConfiguration) {
  const ModuleResources dark = sum_modules(dark_blocks());
  const ModuleResources dd = sum_modules(day_dusk_blocks());
  EXPECT_GT(dark.lut, dd.lut);
  EXPECT_GT(dark.ff, dd.ff);
  EXPECT_GT(dark.bram, dd.bram);
  EXPECT_GT(dark.dsp, dd.dsp);
}

TEST(Floorplan, MarginSweepTightensFit) {
  // Ablation A3: with margin 1.0 the partition barely fits; below 1.0 the
  // larger configuration no longer fits.
  const DeviceResources device;
  FloorplanParams tight;
  tight.logic_margin = 1.0;
  EXPECT_TRUE(
      fits(sum_modules(dark_blocks()),
           floorplan_partition(dark_blocks(), device, tight)));

  FloorplanParams too_small;
  too_small.logic_margin = 0.9;
  EXPECT_FALSE(
      fits(sum_modules(dark_blocks()),
           floorplan_partition(dark_blocks(), device, too_small)));
}

TEST(Floorplan, FitsChecksEveryResource) {
  const ModuleResources part{"p", 100, 100, 10, 10};
  EXPECT_TRUE(fits({"c", 100, 100, 10, 10}, part));
  EXPECT_FALSE(fits({"c", 101, 100, 10, 10}, part));
  EXPECT_FALSE(fits({"c", 100, 101, 10, 10}, part));
  EXPECT_FALSE(fits({"c", 100, 100, 11, 10}, part));
  EXPECT_FALSE(fits({"c", 100, 100, 10, 11}, part));
}

TEST(Blocks, InventoriesNonEmptyAndPositive) {
  for (const auto& blocks :
       {static_design_blocks(), day_dusk_blocks(), dark_blocks()}) {
    EXPECT_FALSE(blocks.empty());
    for (const ModuleResources& b : blocks) {
      EXPECT_FALSE(b.name.empty());
      EXPECT_GE(b.lut, 0);
      EXPECT_GE(b.ff, 0);
      EXPECT_GE(b.bram, 0);
      EXPECT_GE(b.dsp, 0);
    }
  }
}

TEST(Blocks, DbnEngineDominatesDarkDesign) {
  // Sanity on the inventory: the DBN engine is the big consumer, mirroring
  // the paper's observation that the dark configuration is the largest.
  const auto blocks = dark_blocks();
  const auto dbn = std::find_if(blocks.begin(), blocks.end(),
                                [](const ModuleResources& m) {
                                  return m.name == "dbn-engine";
                                });
  ASSERT_NE(dbn, blocks.end());
  const ModuleResources total = sum_modules(blocks);
  EXPECT_GT(dbn->lut * 2, total.lut);
  EXPECT_GT(dbn->dsp * 2, total.dsp);
}

}  // namespace
}  // namespace avd::soc
