#include "avd/soc/axi_lite.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

// A 4-register scratch device for interconnect tests.
class ScratchDevice final : public AxiLiteDevice {
 public:
  explicit ScratchDevice(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t window_bytes() const override { return 16; }
  std::uint32_t read(std::uint32_t offset, TimePoint) override {
    check(offset);
    return regs_[offset / 4];
  }
  void write(std::uint32_t offset, std::uint32_t value, TimePoint) override {
    check(offset);
    regs_[offset / 4] = value;
  }

 private:
  static void check(std::uint32_t offset) {
    if (offset >= 16 || offset % 4 != 0)
      throw std::out_of_range("scratch: bad offset");
  }
  std::string name_;
  std::uint32_t regs_[4] = {};
};

TEST(AxiLiteInterconnect, RoutesToMappedDevice) {
  ScratchDevice dev("a");
  AxiLiteInterconnect bus;
  bus.attach(0x1000, &dev);
  (void)bus.write(0x1008, 0xDEADBEEF, {0});
  EXPECT_EQ(bus.read(0x1008, {0}).value, 0xDEADBEEFu);
  EXPECT_EQ(bus.read(0x1000, {0}).value, 0u);
}

TEST(AxiLiteInterconnect, MultipleDevicesIndependent) {
  ScratchDevice a("a"), b("b");
  AxiLiteInterconnect bus;
  bus.attach(0x0, &a);
  bus.attach(0x100, &b);
  (void)bus.write(0x4, 1, {0});
  (void)bus.write(0x104, 2, {0});
  EXPECT_EQ(bus.read(0x4, {0}).value, 1u);
  EXPECT_EQ(bus.read(0x104, {0}).value, 2u);
  EXPECT_EQ(bus.device_count(), 2u);
}

TEST(AxiLiteInterconnect, UnmappedAddressThrows) {
  ScratchDevice dev("a");
  AxiLiteInterconnect bus;
  bus.attach(0x1000, &dev);
  EXPECT_THROW((void)bus.read(0x0FFC, {0}), std::out_of_range);
  EXPECT_THROW((void)bus.read(0x1010, {0}), std::out_of_range);  // past window
  EXPECT_THROW((void)bus.write(0x2000, 1, {0}), std::out_of_range);
}

TEST(AxiLiteInterconnect, OverlappingWindowsRejected) {
  ScratchDevice a("a"), b("b");
  AxiLiteInterconnect bus;
  bus.attach(0x1000, &a);
  EXPECT_THROW(bus.attach(0x1008, &b), std::invalid_argument);  // overlaps
  EXPECT_THROW(bus.attach(0x0FF8, &b), std::invalid_argument);  // tail overlap
  EXPECT_NO_THROW(bus.attach(0x1010, &b));  // adjacent is fine
}

TEST(AxiLiteInterconnect, RejectsNullAndUnaligned) {
  AxiLiteInterconnect bus;
  ScratchDevice dev("a");
  EXPECT_THROW(bus.attach(0x1000, nullptr), std::invalid_argument);
  EXPECT_THROW(bus.attach(0x1001, &dev), std::invalid_argument);
}

TEST(AxiLiteInterconnect, AccessesChargeLatency) {
  ScratchDevice dev("a");
  AxiLiteInterconnect bus(Duration::from_ns(200));
  bus.attach(0x0, &dev);
  EXPECT_EQ(bus.write(0x0, 7, {0}).latency, Duration::from_ns(200));
  EXPECT_EQ(bus.read(0x0, {0}).latency, Duration::from_ns(200));
}

}  // namespace
}  // namespace avd::soc
