#include "avd/soc/reconfig.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

PartialBitstream paper_bitstream() {
  const DeviceResources device;
  return make_partial_bitstream(
      "dark", floorplan_partition(dark_blocks(), device, {}), device, {});
}

TEST(ReconfigController, RequiresStagingFirst) {
  ReconfigController ctrl(default_platform(), ReconfigMethod::PlDmaIcap);
  EXPECT_THROW((void)ctrl.reconfigure({0}, paper_bitstream()),
               std::logic_error);
}

TEST(ReconfigController, StagingEnablesReconfig) {
  ReconfigController ctrl(default_platform(), ReconfigMethod::PlDmaIcap);
  const PartialBitstream bits = paper_bitstream();
  EXPECT_FALSE(ctrl.staged("dark"));
  ctrl.stage(bits);
  EXPECT_TRUE(ctrl.staged("dark"));
  EXPECT_NO_THROW((void)ctrl.reconfigure({0}, bits));
}

TEST(ReconfigController, StagingCostOnlyForPlDma) {
  const PartialBitstream bits = paper_bitstream();
  ReconfigController pl(default_platform(), ReconfigMethod::PlDmaIcap);
  EXPECT_GT(pl.stage(bits).ps, 0u);  // PS->PL DDR copy is modelled

  for (ReconfigMethod m : {ReconfigMethod::AxiHwicap, ReconfigMethod::Pcap,
                           ReconfigMethod::ZyCap}) {
    ReconfigController ctrl(default_platform(), m);
    EXPECT_EQ(ctrl.stage(bits).ps, 0u) << to_string(m);
  }
}

TEST(ReconfigController, ResultTimingConsistent) {
  ReconfigController ctrl(default_platform(), ReconfigMethod::PlDmaIcap);
  const PartialBitstream bits = paper_bitstream();
  ctrl.stage(bits);
  const TimePoint start{5'000'000'000};  // 5 ms in
  const ReconfigResult r = ctrl.reconfigure(start, bits);
  EXPECT_EQ(r.start, start);
  EXPECT_EQ(r.end, start + r.transfer.elapsed);
  EXPECT_EQ(r.duration(), r.transfer.elapsed);
  EXPECT_EQ(r.config_name, "dark");
  EXPECT_EQ(r.method, ReconfigMethod::PlDmaIcap);
}

TEST(ReconfigController, TracksActiveConfig) {
  ReconfigController ctrl(default_platform(), ReconfigMethod::PlDmaIcap);
  EXPECT_TRUE(ctrl.active_config().empty());
  PartialBitstream day{"day-dusk", 8 << 20};
  PartialBitstream dark{"dark", 8 << 20};
  ctrl.stage(day);
  ctrl.stage(dark);
  (void)ctrl.reconfigure({0}, dark);
  EXPECT_EQ(ctrl.active_config(), "dark");
  (void)ctrl.reconfigure({100'000'000'000}, day);
  EXPECT_EQ(ctrl.active_config(), "day-dusk");
}

TEST(ReconfigController, EventsLogged) {
  ReconfigController ctrl(default_platform(), ReconfigMethod::PlDmaIcap);
  const PartialBitstream bits = paper_bitstream();
  ctrl.stage(bits);
  (void)ctrl.reconfigure({0}, bits);
  const auto events = ctrl.log().from("pr-controller");
  ASSERT_EQ(events.size(), 3u);  // stage + window open + reconfigure done
  EXPECT_NE(events[1].message.find("PR window open"), std::string::npos);
  EXPECT_NE(events[2].message.find("IRQ"), std::string::npos);
}

TEST(CompareMethods, ProducesFourOrderedRows) {
  const auto rows = compare_methods(default_platform(), paper_bitstream());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].method, ReconfigMethod::AxiHwicap);
  EXPECT_EQ(rows[3].method, ReconfigMethod::PlDmaIcap);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GT(rows[i].throughput_mbps, rows[i - 1].throughput_mbps);
  for (const auto& r : rows) {
    EXPECT_GT(r.pct_of_ceiling, 0.0);
    EXPECT_LT(r.pct_of_ceiling, 100.0);
  }
}

TEST(CompareMethods, ReconfigTimeInverselyOrdered) {
  const auto rows = compare_methods(default_platform(), paper_bitstream());
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_LT(rows[i].reconfig_time.ps, rows[i - 1].reconfig_time.ps);
}

}  // namespace
}  // namespace avd::soc
