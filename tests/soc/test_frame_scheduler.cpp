#include "avd/soc/frame_scheduler.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(FrameScheduler, FramePeriodAt50Fps) {
  const FrameSchedulerConfig cfg;
  EXPECT_EQ(cfg.frame_period(), Duration::from_ms(20));
}

TEST(FrameScheduler, FrameTimesAreMultiplesOfPeriod) {
  FrameScheduler s;
  EXPECT_EQ(s.frame_time(0).ps, 0u);
  EXPECT_EQ(s.frame_time(5), TimePoint{} + Duration::from_ms(100));
}

TEST(FrameScheduler, NoWindowsMeansAllProcessed) {
  FrameScheduler s;
  const auto records = s.schedule(10, "day-dusk");
  ASSERT_EQ(records.size(), 10u);
  for (const FrameRecord& r : records) {
    EXPECT_TRUE(r.vehicle_processed);
    EXPECT_TRUE(r.pedestrian_processed);
    EXPECT_EQ(r.vehicle_config, "day-dusk");
  }
  EXPECT_EQ(FrameScheduler::dropped_vehicle_frames(records), 0);
}

TEST(FrameScheduler, PaperScenario20msWindowDropsExactlyOneFrame) {
  // Reconfig starts mid-frame-2 (engine drained), lasts ~21.5 ms: only the
  // frame captured inside the window (frame 3) is lost.
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(57),
                        Duration::from_us(21500), "dark");
  const auto records = s.schedule(8, "day-dusk");
  EXPECT_EQ(FrameScheduler::dropped_vehicle_frames(records), 1);
  EXPECT_FALSE(records[3].vehicle_processed);  // captured at 60 ms
  EXPECT_TRUE(records[4].vehicle_processed);   // captured at 80 ms
}

TEST(FrameScheduler, PedestrianNeverDrops) {
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(10),
                        Duration::from_ms(100), "dark");
  for (const FrameRecord& r : s.schedule(20, "day-dusk"))
    EXPECT_TRUE(r.pedestrian_processed);
}

TEST(FrameScheduler, ConfigSwitchesAfterWindowEnd) {
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(30),
                        Duration::from_ms(15), "dark");
  const auto records = s.schedule(5, "day-dusk");
  EXPECT_EQ(records[0].vehicle_config, "day-dusk");
  EXPECT_EQ(records[1].vehicle_config, "day-dusk");  // t=20, window active at 30
  EXPECT_EQ(records[2].vehicle_config, "day-dusk");  // t=40, window ends at 45
  EXPECT_EQ(records[3].vehicle_config, "dark");      // t=60
  EXPECT_FALSE(records[2].vehicle_processed);        // captured inside window
}

TEST(FrameScheduler, LongWindowDropsMultipleFrames) {
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(5),
                        Duration::from_ms(120), "dark");  // covers t=20..120
  const auto records = s.schedule(10, "a");
  // Frames captured at 20,40,60,80,100,120(?): window [5,125) covers
  // 20,40,60,80,100,120 -> 6 drops.
  EXPECT_EQ(FrameScheduler::dropped_vehicle_frames(records), 6);
}

TEST(FrameScheduler, WindowBetweenCapturesDropsNothing) {
  // A sub-frame-gap window that starts after one capture and ends before the
  // next costs zero frames.
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(21),
                        Duration::from_ms(15), "dark");
  EXPECT_EQ(FrameScheduler::dropped_vehicle_frames(s.schedule(5, "a")), 0);
}

TEST(FrameScheduler, MultipleWindowsAccumulate) {
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(19),
                        Duration::from_ms(2), "dark");  // covers t=20
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(99),
                        Duration::from_ms(2), "day-dusk");  // covers t=100
  const auto records = s.schedule(8, "day-dusk");
  EXPECT_EQ(FrameScheduler::dropped_vehicle_frames(records), 2);
  EXPECT_EQ(records[7].vehicle_config, "day-dusk");
  EXPECT_EQ(records[3].vehicle_config, "dark");
}

TEST(FrameScheduler, OverlappingWindowsRejected) {
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(10),
                        Duration::from_ms(20), "a");
  EXPECT_THROW(s.add_reconfig_window(TimePoint{} + Duration::from_ms(25),
                                     Duration::from_ms(10), "b"),
               std::invalid_argument);
}

TEST(FrameScheduler, ZeroLengthWindowRejected) {
  FrameScheduler s;
  EXPECT_THROW(s.add_reconfig_window({0}, Duration{}, "a"),
               std::invalid_argument);
}

TEST(FrameScheduler, CustomFps) {
  FrameSchedulerConfig cfg;
  cfg.fps = 25.0;
  FrameScheduler s(cfg);
  EXPECT_EQ(s.frame_time(1), TimePoint{} + Duration::from_ms(40));
}

TEST(FrameScheduler, AvailabilityArithmetic) {
  FrameScheduler s;
  s.add_reconfig_window(TimePoint{} + Duration::from_ms(39),
                        Duration::from_ms(2), "x");  // drops frame at t=40
  const auto records = s.schedule(50, "a");
  EXPECT_EQ(FrameScheduler::dropped_vehicle_frames(records), 1);
}

}  // namespace
}  // namespace avd::soc
