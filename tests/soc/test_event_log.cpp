#include "avd/soc/event_log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace avd::soc {
namespace {

TEST(EventLog, RecordsInOrder) {
  EventLog log;
  log.record({100}, "a", "first");
  log.record({200}, "b", "second");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].message, "first");
  EXPECT_EQ(log.events()[1].source, "b");
}

TEST(EventLog, FilterBySource) {
  EventLog log;
  log.record({1}, "dma", "x");
  log.record({2}, "icap", "y");
  log.record({3}, "dma", "z");
  const auto dma = log.from("dma");
  ASSERT_EQ(dma.size(), 2u);
  EXPECT_EQ(dma[0].message, "x");
  EXPECT_EQ(dma[1].message, "z");
  EXPECT_TRUE(log.from("nope").empty());
}

TEST(EventLog, ToStringContainsAllFields) {
  EventLog log;
  log.record(TimePoint{} + Duration::from_ms(5), "pr-controller", "done");
  const std::string s = log.to_string();
  EXPECT_NE(s.find("pr-controller"), std::string::npos);
  EXPECT_NE(s.find("done"), std::string::npos);
  EXPECT_NE(s.find('5'), std::string::npos);
}

TEST(EventLog, Clear) {
  EventLog log;
  log.record({1}, "a", "x");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.to_string().empty());
}

// Regression for the avd::runtime worker pools: record() from multiple
// threads into one log must lose nothing and corrupt nothing (run under
// AVD_SANITIZE=thread in scripts/check.sh).
TEST(EventLog, ConcurrentRecordFromFourThreads) {
  EventLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      const std::string source = "worker-" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i)
        log.record({static_cast<std::uint64_t>(i)}, source,
                   "event " + std::to_string(i));
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(log.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (int t = 0; t < kThreads; ++t) {
    const auto from = log.from("worker-" + std::to_string(t));
    ASSERT_EQ(from.size(), static_cast<std::size_t>(kPerThread));
    // Per-thread order is preserved (each producer appends sequentially).
    for (int i = 0; i < kPerThread; ++i)
      EXPECT_EQ(from[static_cast<std::size_t>(i)].time.ps,
                static_cast<std::uint64_t>(i));
  }
}

TEST(EventLog, CopyAndMovePreserveEvents) {
  EventLog log;
  log.record({1}, "a", "x");
  log.record({2}, "b", "y");
  const EventLog copy = log;        // copy ctor snapshots under the lock
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(log.size(), 2u);
  EventLog moved = std::move(log);  // move ctor takes the vector
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.events()[1].message, "y");
}

}  // namespace
}  // namespace avd::soc
