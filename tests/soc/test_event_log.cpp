#include "avd/soc/event_log.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(EventLog, RecordsInOrder) {
  EventLog log;
  log.record({100}, "a", "first");
  log.record({200}, "b", "second");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].message, "first");
  EXPECT_EQ(log.events()[1].source, "b");
}

TEST(EventLog, FilterBySource) {
  EventLog log;
  log.record({1}, "dma", "x");
  log.record({2}, "icap", "y");
  log.record({3}, "dma", "z");
  const auto dma = log.from("dma");
  ASSERT_EQ(dma.size(), 2u);
  EXPECT_EQ(dma[0].message, "x");
  EXPECT_EQ(dma[1].message, "z");
  EXPECT_TRUE(log.from("nope").empty());
}

TEST(EventLog, ToStringContainsAllFields) {
  EventLog log;
  log.record(TimePoint{} + Duration::from_ms(5), "pr-controller", "done");
  const std::string s = log.to_string();
  EXPECT_NE(s.find("pr-controller"), std::string::npos);
  EXPECT_NE(s.find("done"), std::string::npos);
  EXPECT_NE(s.find('5'), std::string::npos);
}

TEST(EventLog, Clear) {
  EventLog log;
  log.record({1}, "a", "x");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.to_string().empty());
}

}  // namespace
}  // namespace avd::soc
