#include "avd/soc/trace_export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace avd::soc {
namespace {

TEST(TraceExport, EmptyLogIsValidDocument) {
  const std::string json = to_chrome_trace(EventLog{});
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

TEST(TraceExport, EventsCarrySourceThreadAndTimestamp) {
  EventLog log;
  log.record(TimePoint{} + Duration::from_ms(5), "pr-controller", "reconfig");
  log.record(TimePoint{} + Duration::from_ms(7), "vehicle-in-dma", "done");
  const std::string json = to_chrome_trace(log);

  EXPECT_NE(json.find("\"pr-controller\""), std::string::npos);
  EXPECT_NE(json.find("\"vehicle-in-dma\""), std::string::npos);
  EXPECT_NE(json.find("\"reconfig\""), std::string::npos);
  // 5 ms = 5000 us.
  EXPECT_NE(json.find("\"ts\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":7000"), std::string::npos);
}

TEST(TraceExport, SameSourceSharesThread) {
  EventLog log;
  log.record({1}, "a", "x");
  log.record({2}, "a", "y");
  log.record({3}, "b", "z");
  const std::string json = to_chrome_trace(log);
  // Exactly two thread_name metadata entries.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("thread_name", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u);
}

TEST(TraceExport, EscapesSpecialCharacters) {
  EventLog log;
  log.record({0}, "src", "quote \" backslash \\ newline \n end");
  const std::string json = to_chrome_trace(log);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // no raw newline in JSON
}

TEST(TraceExport, WritesFile) {
  const auto dir = std::filesystem::temp_directory_path() / "avd_trace";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.json").string();
  EventLog log;
  log.record({0}, "src", "event");
  write_chrome_trace(log, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_chrome_trace(log));
  std::filesystem::remove_all(dir);
}

TEST(TraceExport, WriteToBadPathThrows) {
  EXPECT_THROW(write_chrome_trace(EventLog{}, "/nonexistent-dir/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace avd::soc
