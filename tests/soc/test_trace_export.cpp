#include "avd/soc/trace_export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "avd/obs/json.hpp"

namespace avd::soc {
namespace {

TEST(TraceExport, EmptyLogIsValidDocument) {
  const std::string json = to_chrome_trace(EventLog{});
  EXPECT_EQ(json, "{\"traceEvents\":[]}");
}

TEST(TraceExport, EventsCarrySourceThreadAndTimestamp) {
  EventLog log;
  log.record(TimePoint{} + Duration::from_ms(5), "pr-controller", "reconfig");
  log.record(TimePoint{} + Duration::from_ms(7), "vehicle-in-dma", "done");
  const std::string json = to_chrome_trace(log);

  EXPECT_NE(json.find("\"pr-controller\""), std::string::npos);
  EXPECT_NE(json.find("\"vehicle-in-dma\""), std::string::npos);
  EXPECT_NE(json.find("\"reconfig\""), std::string::npos);
  // 5 ms = 5000 us.
  EXPECT_NE(json.find("\"ts\":5000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":7000"), std::string::npos);
}

TEST(TraceExport, SameSourceSharesThread) {
  EventLog log;
  log.record({1}, "a", "x");
  log.record({2}, "a", "y");
  log.record({3}, "b", "z");
  const std::string json = to_chrome_trace(log);
  // Exactly two thread_name metadata entries.
  std::size_t count = 0, pos = 0;
  while ((pos = json.find("thread_name", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u);
}

TEST(TraceExport, EscapesSpecialCharacters) {
  EventLog log;
  log.record({0}, "src", "quote \" backslash \\ newline \n end");
  const std::string json = to_chrome_trace(log);
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // no raw newline in JSON
}

TEST(TraceExport, ControlCharactersAreEscaped) {
  EventLog log;
  log.record({0}, "src", std::string("tab \t cr \r bell \x01 end"));
  const std::string json = to_chrome_trace(log);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  EXPECT_TRUE(obs::json::valid(json)) << json;
}

TEST(TraceExport, OutputParsesAsJsonWithExpectedShape) {
  EventLog log;
  log.record({1'000'000}, "dma", "burst \"0\" \\ done");
  log.record({2'000'000}, "irq", "raised");
  const std::string text = to_chrome_trace(log);
  const std::optional<obs::json::Value> doc = obs::json::parse(text);
  ASSERT_TRUE(doc.has_value()) << text;

  const obs::json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, obs::json::Value::Type::Array);
  // 2 thread_name metadata + 2 instants.
  ASSERT_EQ(events->array.size(), 4u);
  for (const obs::json::Value& e : events->array) {
    EXPECT_NE(e.find("name"), nullptr);
    EXPECT_NE(e.find("ph"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  const obs::json::Value& burst = events->array[2];
  EXPECT_EQ(burst.find("ph")->string, "i");
  EXPECT_EQ(burst.find("name")->string, "burst \"0\" \\ done");  // round-trip
}

TEST(TraceExport, MergedTraceCombinesSpansAndInstants) {
  EventLog log;
  log.record({3'000'000'000}, "pr-controller", "PR window open");

  // Spans from every instrumented layer, two threads for the same source.
  const std::vector<obs::SpanRecord> spans = {
      {"control_step", "core/control", 1'000, 5'000, 0},
      {"detect_multiscale", "detect/hogsvm", 5'000, 90'000, 0},
      {"detect_multiscale", "detect/hogsvm", 6'000, 80'000, 1},
      {"reconfigure", "soc/reconfig", 90'500, 91'000, 0},
      {"ingest_frame", "runtime/ingest", 200, 900, 2},
  };
  const std::string text = to_chrome_trace(log, spans);
  ASSERT_TRUE(obs::json::valid(text)) << text;
  const obs::json::Value doc = *obs::json::parse(text);
  const obs::json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::size_t complete = 0, instants = 0, thread_names = 0, process_names = 0;
  for (const obs::json::Value& e : events->array) {
    const std::string& ph = e.find("ph")->string;
    const std::string& name = e.find("name")->string;
    if (ph == "X") ++complete;
    if (ph == "i") ++instants;
    if (ph == "M" && name == "thread_name") ++thread_names;
    if (ph == "M" && name == "process_name") ++process_names;
  }
  EXPECT_EQ(complete, spans.size());
  EXPECT_EQ(instants, 1u);
  // 4 distinct sources, one of them split over two recording threads, plus
  // the pr-controller instant row.
  EXPECT_EQ(thread_names, 6u);
  EXPECT_EQ(process_names, 2u);

  // Wall-clock span rows and simulated-time event rows live in separate
  // trace processes.
  const MergedTraceOptions defaults;
  for (const obs::json::Value& e : events->array) {
    const int pid = static_cast<int>(e.find("pid")->number);
    if (e.find("ph")->string == "X") EXPECT_EQ(pid, defaults.span_pid);
    if (e.find("ph")->string == "i") EXPECT_EQ(pid, defaults.event_pid);
  }
}

TEST(TraceExport, MergedTraceOfNothingIsValid) {
  const std::string text = to_chrome_trace(EventLog{}, {});
  EXPECT_TRUE(obs::json::valid(text));
  EXPECT_NE(text.find("process_name"), std::string::npos);
}

TEST(TraceExport, MergedTraceSpanTimestampsKeepNanosecondPrecision) {
  const std::vector<obs::SpanRecord> spans = {
      {"s", "src", 1'234'567, 2'000'001, 0}};
  const std::string text = to_chrome_trace(EventLog{}, spans);
  EXPECT_TRUE(obs::json::valid(text)) << text;
  EXPECT_NE(text.find("\"ts\":1234.567"), std::string::npos) << text;
  EXPECT_NE(text.find("\"dur\":765.434"), std::string::npos) << text;
}

obs::SpanRecord traced_span(const char* name, const char* source,
                            std::uint64_t begin, std::uint64_t end, int thread,
                            std::uint64_t trace, std::uint64_t id,
                            std::uint64_t parent) {
  obs::SpanRecord s;
  s.name = name;
  s.source = source;
  s.begin_ns = begin;
  s.end_ns = end;
  s.thread = thread;
  s.trace_id = trace;
  s.span_id = id;
  s.parent_span_id = parent;
  return s;
}

TEST(TraceExport, TracedSpansCarryLinkageAndNumericArgs) {
  obs::SpanRecord s =
      traced_span("detect_frame", "runtime/detect", 100, 900, 2, 77, 702, 701);
  s.arg_count = 2;
  s.args[0] = {"stream", 1};
  s.args[1] = {"frame", 42};
  const std::string text = to_chrome_trace(EventLog{}, {&s, 1});
  const obs::json::Value doc = *obs::json::parse(text);

  const obs::json::Value* args = nullptr;
  for (const obs::json::Value& e : doc.find("traceEvents")->array)
    if (e.find("ph")->string == "X") args = e.find("args");
  ASSERT_NE(args, nullptr) << text;
  EXPECT_DOUBLE_EQ(args->find("trace_id")->number, 77.0);
  EXPECT_DOUBLE_EQ(args->find("span_id")->number, 702.0);
  EXPECT_DOUBLE_EQ(args->find("parent_span_id")->number, 701.0);
  EXPECT_DOUBLE_EQ(args->find("stream")->number, 1.0);
  EXPECT_DOUBLE_EQ(args->find("frame")->number, 42.0);
}

TEST(TraceExport, UntracedSpanWithoutArgsEmitsNoArgsObject) {
  const std::vector<obs::SpanRecord> spans = {{"s", "src", 0, 10, 0}};
  const std::string text = to_chrome_trace(EventLog{}, spans);
  const obs::json::Value doc = *obs::json::parse(text);
  for (const obs::json::Value& e : doc.find("traceEvents")->array) {
    if (e.find("ph")->string == "X") {
      EXPECT_EQ(e.find("args"), nullptr);
    }
  }
}

TEST(TraceExport, FlowEventsLinkCrossThreadHops) {
  // ingest(t0) -> control(t1) -> detect(t2): three hops, one arc.
  const std::vector<obs::SpanRecord> spans = {
      traced_span("ingest_frame", "runtime/ingest", 0, 10, 0, 9, 91, 0),
      traced_span("control_frame", "runtime/control", 20, 30, 1, 9, 92, 91),
      traced_span("detect_frame", "runtime/detect", 40, 60, 2, 9, 93, 92),
  };
  const std::string text = to_chrome_trace(EventLog{}, spans);
  const obs::json::Value doc = *obs::json::parse(text);

  std::vector<std::string> phases;
  for (const obs::json::Value& e : doc.find("traceEvents")->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph != "s" && ph != "t" && ph != "f") continue;
    phases.push_back(ph);
    EXPECT_DOUBLE_EQ(e.find("id")->number, 9.0);
    if (ph == "f") {
      ASSERT_NE(e.find("bp"), nullptr);  // bind to enclosing slice
      EXPECT_EQ(e.find("bp")->string, "e");
    } else {
      EXPECT_EQ(e.find("bp"), nullptr);
    }
  }
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0], "s");
  EXPECT_EQ(phases[1], "t");
  EXPECT_EQ(phases[2], "f");
}

TEST(TraceExport, SameThreadChildrenAreNotFlowHops) {
  // Root hops to another thread; the nested same-thread child must not add
  // a third anchor to the arc.
  const std::vector<obs::SpanRecord> spans = {
      traced_span("root", "a", 0, 100, 0, 5, 51, 0),
      traced_span("nested", "a", 10, 20, 0, 5, 52, 51),   // same thread
      traced_span("handoff", "b", 50, 90, 1, 5, 53, 51),  // cross thread
  };
  const std::string text = to_chrome_trace(EventLog{}, spans);
  const obs::json::Value doc = *obs::json::parse(text);
  std::size_t flows = 0;
  for (const obs::json::Value& e : doc.find("traceEvents")->array) {
    const std::string& ph = e.find("ph")->string;
    if (ph == "s" || ph == "t" || ph == "f") ++flows;
  }
  EXPECT_EQ(flows, 2u);  // just root ("s") and handoff ("f")
}

TEST(TraceExport, SingleHopTraceDrawsNoArc) {
  // An arc needs two ends: a lone root span emits no flow events at all.
  const std::vector<obs::SpanRecord> spans = {
      traced_span("only", "a", 0, 10, 0, 3, 31, 0)};
  const std::string text = to_chrome_trace(EventLog{}, spans);
  const obs::json::Value doc = *obs::json::parse(text);
  for (const obs::json::Value& e : doc.find("traceEvents")->array) {
    const std::string& ph = e.find("ph")->string;
    EXPECT_TRUE(ph != "s" && ph != "t" && ph != "f") << text;
  }
}

TEST(TraceExport, WritesMergedFile) {
  const auto dir = std::filesystem::temp_directory_path() / "avd_trace_merged";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "m.json").string();
  EventLog log;
  log.record({0}, "src", "event");
  const std::vector<obs::SpanRecord> spans = {{"s", "src", 0, 10, 0}};
  write_chrome_trace(log, spans, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_chrome_trace(log, spans));
  std::filesystem::remove_all(dir);
}

TEST(TraceExport, WritesFile) {
  const auto dir = std::filesystem::temp_directory_path() / "avd_trace";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.json").string();
  EventLog log;
  log.record({0}, "src", "event");
  write_chrome_trace(log, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, to_chrome_trace(log));
  std::filesystem::remove_all(dir);
}

TEST(TraceExport, WriteToBadPathThrows) {
  EXPECT_THROW(write_chrome_trace(EventLog{}, "/nonexistent-dir/x.json"),
               std::runtime_error);
}

}  // namespace
}  // namespace avd::soc
