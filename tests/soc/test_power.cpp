#include "avd/soc/power.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(Power, ZeroLogicZeroPower) {
  const PowerEstimate p = estimate_power({"empty", 0, 0, 0, 0}, 1.0);
  EXPECT_DOUBLE_EQ(p.total_mw(), 0.0);
}

TEST(Power, ClockGatedKeepsLeakageAndClock) {
  const ModuleResources block{"b", 10000, 20000, 10, 8};
  const PowerEstimate active = estimate_power(block, 1.0);
  const PowerEstimate gated = estimate_power(block, 0.0);
  EXPECT_DOUBLE_EQ(gated.dynamic_mw, 0.0);
  EXPECT_GT(gated.leakage_mw, 0.0);
  EXPECT_GT(gated.clock_mw, 0.0);
  EXPECT_DOUBLE_EQ(gated.leakage_mw, active.leakage_mw);
  EXPECT_DOUBLE_EQ(gated.clock_mw, active.clock_mw);
  EXPECT_LT(gated.total_mw(), active.total_mw());
}

TEST(Power, DynamicScalesWithActivity) {
  const ModuleResources block{"b", 10000, 20000, 10, 8};
  const PowerEstimate half = estimate_power(block, 0.5);
  const PowerEstimate full = estimate_power(block, 1.0);
  EXPECT_NEAR(full.dynamic_mw, 2.0 * half.dynamic_mw, 1e-9);
}

TEST(Power, ActivityRangeValidated) {
  const ModuleResources block{"b", 1000, 1000, 1, 1};
  EXPECT_THROW((void)estimate_power(block, -0.1), std::invalid_argument);
  EXPECT_THROW((void)estimate_power(block, 1.1), std::invalid_argument);
}

TEST(Power, MoreLogicMorePower) {
  const PowerEstimate small = estimate_power({"s", 10000, 10000, 5, 5}, 1.0);
  const PowerEstimate big = estimate_power({"b", 100000, 100000, 50, 50}, 1.0);
  EXPECT_GT(big.total_mw(), small.total_mw());
}

TEST(Power, PrBeatsStaticInDayMode) {
  // The common case: driving in daylight. The PR design has only the small
  // day/dusk configuration on the fabric; all-static carries the DBN engine
  // too (gated, but leaking).
  const double pr = pr_design_power("day-dusk").power.total_mw();
  const double st = static_design_power("day-dusk").power.total_mw();
  EXPECT_LT(pr, st);
  EXPECT_GT((st - pr) / st, 0.15);  // a substantial saving, not noise
}

TEST(Power, GapShrinksInDarkMode) {
  // At night the big configuration is loaded either way; the PR design only
  // saves the idle day/dusk pipeline's leakage.
  const double pr_day_gap = static_design_power("day-dusk").power.total_mw() -
                            pr_design_power("day-dusk").power.total_mw();
  const double pr_dark_gap = static_design_power("dark").power.total_mw() -
                             pr_design_power("dark").power.total_mw();
  EXPECT_GT(pr_day_gap, pr_dark_gap);
  EXPECT_GT(pr_dark_gap, 0.0);
}

TEST(Power, DynamicEqualAcrossDesignsSameMode) {
  // Clock gating removes the idle pipeline's toggling entirely, so dynamic
  // power depends only on the active configuration.
  EXPECT_NEAR(pr_design_power("dark").power.dynamic_mw,
              static_design_power("dark").power.dynamic_mw, 1e-9);
}

TEST(Power, UnknownConfigThrows) {
  EXPECT_THROW((void)pr_design_power("nope"), std::invalid_argument);
  EXPECT_THROW((void)static_design_power("nope"), std::invalid_argument);
}

TEST(Power, StaticConfiguredLogicIsSupersetOfPr) {
  const ModuleResources pr = pr_design_power("day-dusk").configured;
  const ModuleResources st = static_design_power("day-dusk").configured;
  EXPECT_GT(st.lut, pr.lut);
  EXPECT_GT(st.dsp, pr.dsp);
}

}  // namespace
}  // namespace avd::soc
