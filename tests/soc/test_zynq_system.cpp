#include "avd/soc/zynq_system.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(VideoFormat, HdtvTrafficNumbers) {
  const VideoFormat v;  // 1920x1080, 2 B/px, 50 fps
  EXPECT_EQ(v.bytes_per_frame(), 1920u * 1080u * 2u);
  EXPECT_NEAR(v.bandwidth_mbps(), 207.36, 0.01);
}

TEST(DetectionModuleRegs, StartRequiresEnable) {
  InterruptController irq;
  const int line = irq.add_line("mod");
  DetectionModuleRegs mod("mod", day_dusk_pipeline_model(), &irq, line);
  EXPECT_THROW(mod.write(0x00, 0x1, {0}), std::logic_error);
  EXPECT_NO_THROW(mod.write(0x00, 0x3, {0}));
}

TEST(DetectionModuleRegs, DoneAfterFrameTime) {
  InterruptController irq;
  const int line = irq.add_line("mod");
  DetectionModuleRegs mod("mod", day_dusk_pipeline_model(), &irq, line);
  mod.write(0x00, 0x3, {0});
  const TimePoint done = mod.done_at();
  EXPECT_NEAR(done.as_ms(), 16.93, 0.2);  // HDTV frame at 125 MHz
  EXPECT_EQ(mod.read(0x04, TimePoint{done.ps - 1}), 0u);
  EXPECT_EQ(mod.read(0x04, done), 1u);
  EXPECT_TRUE(irq.is_pending(line));
}

TEST(DetectionModuleRegs, ModelSelectValidated) {
  InterruptController irq;
  DetectionModuleRegs mod("mod", day_dusk_pipeline_model(), &irq,
                          irq.add_line("mod"));
  mod.write(0x08, 1, {0});
  EXPECT_EQ(mod.model_select(), 1u);
  EXPECT_EQ(mod.read(0x08, {0}), 1u);
  EXPECT_THROW(mod.write(0x08, 2, {0}), std::invalid_argument);
}

TEST(HpBudget, PortLoadAggregation) {
  HpBudget b;
  b.port_capacity_mbps = 1000.0;
  b.streams = {{"a", 300, 0}, {"b", 400, 0}, {"c", 200, 1}};
  EXPECT_DOUBLE_EQ(b.port_load(0), 700.0);
  EXPECT_DOUBLE_EQ(b.port_load(1), 200.0);
  EXPECT_TRUE(b.feasible());
  EXPECT_DOUBLE_EQ(b.worst_utilization(), 0.7);
  b.streams.push_back({"d", 400, 0});
  EXPECT_FALSE(b.feasible());
}

class ZynqSystemTest : public ::testing::Test {
 protected:
  ZynqSystem system_;
};

TEST_F(ZynqSystemTest, HpBudgetFeasibleAt50FpsHdtv) {
  // Fig. 6 routes both frame streams and the results through HP ports:
  // 207 MB/s per input stream against a 1200 MB/s port must fit easily.
  const HpBudget budget = system_.hp_budget();
  EXPECT_TRUE(budget.feasible());
  EXPECT_LT(budget.worst_utilization(), 0.25);
}

TEST_F(ZynqSystemTest, FrameCycleCompletesWithinPipelineBudget) {
  const FrameCycleReport report = system_.process_frame({0});
  // Input DMA (~3 ms) + detection (~17 ms) + output: under two frame
  // periods (the capture/process/readback stages overlap frame-to-frame in
  // hardware; the model serialises them, hence 2 periods).
  EXPECT_LE(report.total_latency({0}).as_ms(), 40.0);
  EXPECT_TRUE(system_.meets_frame_budget());
}

TEST_F(ZynqSystemTest, FrameCycleAccounting) {
  const FrameCycleReport report = system_.process_frame({0});
  // 3 writes per input DMA x2, 1 start per module x2, 3 per output DMA x2.
  EXPECT_EQ(report.register_accesses, 14);
  EXPECT_EQ(report.irqs_serviced, 6);  // 4 DMA + 2 module completions
  EXPECT_GT(report.input_dma_time.ps, 0u);
  EXPECT_GT(report.detect_time.ps, 0u);
  EXPECT_GT(report.output_dma_time.ps, 0u);
  // Control-plane time is negligible against the 20 ms frame budget.
  EXPECT_LT(report.control_time.as_us(), 10.0);
}

TEST_F(ZynqSystemTest, DetectDominatesFrameCycle) {
  const FrameCycleReport report = system_.process_frame({0});
  EXPECT_GT(report.detect_time.ps, report.input_dma_time.ps);
  EXPECT_GT(report.detect_time.ps, report.output_dma_time.ps);
}

TEST_F(ZynqSystemTest, ModelSwapIsOneRegisterWrite) {
  system_.select_vehicle_model(1, {0});
  EXPECT_EQ(system_.vehicle_module().model_select(), 1u);
  system_.select_vehicle_model(0, {0});
  EXPECT_EQ(system_.vehicle_module().model_select(), 0u);
}

TEST_F(ZynqSystemTest, EventsLogged) {
  (void)system_.process_frame({0});
  EXPECT_GE(system_.log().from("vehicle-in-dma").size(), 1u);
  EXPECT_GE(system_.log().from("vehicle-detection").size(), 1u);
  EXPECT_GE(system_.log().from("pedestrian-detection").size(), 1u);
}

TEST_F(ZynqSystemTest, SmallerVideoRunsFasterCycle) {
  ZynqSystem small(default_platform(),
                   VideoFormat{{640, 360}, 2, 50.0});
  const Duration small_latency =
      small.process_frame({0}).total_latency({0});
  const Duration big_latency = system_.process_frame({0}).total_latency({0});
  EXPECT_LT(small_latency.ps, big_latency.ps);
}

TEST_F(ZynqSystemTest, RegisterDrivenReconfiguration) {
  // The PR DMA path models the paper's PR controller: an 8 MB bitstream
  // through the register interface takes ~21.5 ms and ends with a serviced
  // interrupt.
  const TimePoint start{0};
  const TimePoint done = system_.reconfigure(8u << 20, start);
  const double ms = (done - start).as_ms();
  EXPECT_GT(ms, 19.0);
  EXPECT_LT(ms, 24.0);
  // Both start and completion are logged by the PR DMA.
  EXPECT_GE(system_.log().from("pr-dma").size(), 2u);
}

TEST_F(ZynqSystemTest, ConsecutiveFramesIndependent) {
  const FrameCycleReport f0 = system_.process_frame({0});
  const FrameCycleReport f1 =
      system_.process_frame(TimePoint{} + Duration::from_ms(20));
  EXPECT_EQ(f0.register_accesses, f1.register_accesses);
  EXPECT_GT(f1.frame_done.ps, f0.frame_done.ps);
}

}  // namespace
}  // namespace avd::soc
