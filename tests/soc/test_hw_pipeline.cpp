#include "avd/soc/hw_pipeline.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(HwPipeline, PaperClaim50FpsOnHdtv) {
  // Abstract / §V: "capable of detecting pedestrian and vehicles in
  // different lighting conditions at the rate of 50fps for HDTV
  // (1080x1920) frame" at 125 MHz.
  EXPECT_TRUE(day_dusk_pipeline_model().meets_rate(kHdtvFrame, kTargetFps));
  EXPECT_TRUE(dark_pipeline_model().meets_rate(kHdtvFrame, kTargetFps));
  EXPECT_TRUE(pedestrian_pipeline_model().meets_rate(kHdtvFrame, kTargetFps));
}

TEST(HwPipeline, ThroughputDominatedByPixelRate) {
  // 2073600 pixels at 125 MHz = 16.6 ms; overheads must stay small.
  const Duration t = day_dusk_pipeline_model().frame_time(kHdtvFrame);
  EXPECT_GT(t.as_ms(), 16.5);
  EXPECT_LT(t.as_ms(), 18.5);
}

TEST(HwPipeline, MaxFpsInPlausibleBand) {
  const double fps = day_dusk_pipeline_model().max_fps(kHdtvFrame);
  EXPECT_GT(fps, 50.0);
  EXPECT_LT(fps, 62.0);  // no magic: bounded by the 60.3 fps pixel rate
}

TEST(HwPipeline, FillLatencySumsStages) {
  HwPipelineModel m;
  m.stages = {{"a", 100, 1}, {"b", 200, 2}};
  EXPECT_EQ(m.fill_latency_cycles(), 300u);
}

TEST(HwPipeline, SmallerFramesRunFaster) {
  const HwPipelineModel m = day_dusk_pipeline_model();
  EXPECT_GT(m.max_fps({640, 360}), m.max_fps(kHdtvFrame));
}

TEST(HwPipeline, HigherClockRunsFaster) {
  HwPipelineModel slow = day_dusk_pipeline_model();
  HwPipelineModel fast = slow;
  fast.fabric_mhz = 250;
  EXPECT_GT(fast.max_fps(kHdtvFrame), slow.max_fps(kHdtvFrame));
}

TEST(HwPipeline, TwoPixelsPerCycleDoubleRate) {
  HwPipelineModel one = day_dusk_pipeline_model();
  HwPipelineModel two = one;
  two.pixels_per_cycle = 2;
  // Not exactly 2x because of fill latency and overhead, but close.
  EXPECT_GT(two.max_fps(kHdtvFrame), 1.8 * one.max_fps(kHdtvFrame) / 1.0 / 1.0);
  EXPECT_GT(two.max_fps(kHdtvFrame), one.max_fps(kHdtvFrame) * 1.8);
}

TEST(HwPipeline, StageStructureMirrorsFig2) {
  const HwPipelineModel m = day_dusk_pipeline_model();
  ASSERT_GE(m.stages.size(), 5u);
  EXPECT_EQ(m.stages.front().name, "gradient");
  EXPECT_EQ(m.stages.back().name, "svm-classifier");
}

TEST(HwPipeline, DarkStageStructureMirrorsFig4) {
  const HwPipelineModel m = dark_pipeline_model();
  bool has_threshold = false, has_dbn = false, has_closing = false;
  for (const PipelineStage& s : m.stages) {
    has_threshold |= s.name.find("threshold") != std::string::npos;
    has_dbn |= s.name.find("dbn") != std::string::npos;
    has_closing |= s.name.find("closing") != std::string::npos;
  }
  EXPECT_TRUE(has_threshold);
  EXPECT_TRUE(has_dbn);
  EXPECT_TRUE(has_closing);
}

TEST(HwPipeline, At100MhzWouldMissTarget) {
  // Sensitivity check: the 125 MHz clock matters — at 95 MHz the pixel rate
  // alone (2073600 cycles = 21.8 ms) cannot sustain 50 fps.
  HwPipelineModel m = day_dusk_pipeline_model();
  m.fabric_mhz = 95;
  EXPECT_FALSE(m.meets_rate(kHdtvFrame, kTargetFps));
}

}  // namespace
}  // namespace avd::soc
