#include "avd/soc/zynq.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

constexpr std::uint64_t kEightMiB = 8ull << 20;

double method_throughput(ReconfigMethod m) {
  const ZynqPlatform p = default_platform();
  return model_transfer(reconfig_path(p, m), kEightMiB).throughput();
}

TEST(Zynq, ConfigPortCeilingIs400) {
  EXPECT_DOUBLE_EQ(config_port_ceiling_mbps(default_platform()), 400.0);
}

TEST(Zynq, MethodNames) {
  EXPECT_STREQ(to_string(ReconfigMethod::AxiHwicap), "axi-hwicap");
  EXPECT_STREQ(to_string(ReconfigMethod::Pcap), "pcap");
  EXPECT_STREQ(to_string(ReconfigMethod::ZyCap), "zycap");
  EXPECT_STREQ(to_string(ReconfigMethod::PlDmaIcap), "pr-controller");
}

TEST(Zynq, PathsShareIcapCeiling) {
  const ZynqPlatform p = default_platform();
  for (ReconfigMethod m : {ReconfigMethod::AxiHwicap, ReconfigMethod::ZyCap,
                           ReconfigMethod::PlDmaIcap}) {
    EXPECT_DOUBLE_EQ(reconfig_path(p, m).bottleneck_mbps(), 400.0)
        << to_string(m);
  }
}

// The paper's measured ladder (§IV-A): each modelled throughput must fall
// within +-10% of the published number, and the strict ordering must hold.
TEST(Zynq, HwicapNearPaperValue) {
  EXPECT_NEAR(method_throughput(ReconfigMethod::AxiHwicap), 19.0, 1.9);
}

TEST(Zynq, PcapNearPaperValue) {
  EXPECT_NEAR(method_throughput(ReconfigMethod::Pcap), 145.0, 14.5);
}

TEST(Zynq, ZycapNearPaperValue) {
  EXPECT_NEAR(method_throughput(ReconfigMethod::ZyCap), 382.0, 19.0);
}

TEST(Zynq, PrControllerNearPaperValue) {
  EXPECT_NEAR(method_throughput(ReconfigMethod::PlDmaIcap), 390.0, 19.5);
}

TEST(Zynq, StrictThroughputOrdering) {
  const double hwicap = method_throughput(ReconfigMethod::AxiHwicap);
  const double pcap = method_throughput(ReconfigMethod::Pcap);
  const double zycap = method_throughput(ReconfigMethod::ZyCap);
  const double ours = method_throughput(ReconfigMethod::PlDmaIcap);
  EXPECT_LT(hwicap, pcap);
  EXPECT_LT(pcap, zycap);
  EXPECT_LT(zycap, ours);
  EXPECT_LT(ours, 400.0);  // never beats the port ceiling
}

TEST(Zynq, SpeedupOverPcapAtLeast26x) {
  // Abstract: "speed up of more than 2.6 times for the reconfiguration
  // throughput" vs the PCAP baseline.
  EXPECT_GE(method_throughput(ReconfigMethod::PlDmaIcap) /
                method_throughput(ReconfigMethod::Pcap),
            2.6);
}

TEST(Zynq, PrControllerReaches95PercentOfCeiling) {
  // ZyCAP reached 95.5% of theoretical max [19]; ours must do at least as
  // well.
  EXPECT_GT(method_throughput(ReconfigMethod::PlDmaIcap) / 400.0, 0.955);
}

TEST(Zynq, HwicapIsWordBased) {
  const TransferPath p =
      reconfig_path(default_platform(), ReconfigMethod::AxiHwicap);
  EXPECT_EQ(p.burst_bytes, 4u);  // one 32-bit word per AXI-Lite transaction
}

TEST(Zynq, OnlyPcapPathUsesCentralInterconnect) {
  const ZynqPlatform plat = default_platform();
  auto uses_central = [&](ReconfigMethod m) {
    for (const BusSegment& s : reconfig_path(plat, m).segments)
      if (s.name == "ps-central-interconnect") return true;
    return false;
  };
  EXPECT_TRUE(uses_central(ReconfigMethod::Pcap));
  EXPECT_FALSE(uses_central(ReconfigMethod::ZyCap));
  EXPECT_FALSE(uses_central(ReconfigMethod::PlDmaIcap));
}

TEST(Zynq, PrControllerTouchesNoPsSegments) {
  // The whole point of the paper's design: after the trigger, nothing on the
  // PS side is involved.
  const ZynqPlatform plat = default_platform();
  for (const BusSegment& s :
       reconfig_path(plat, ReconfigMethod::PlDmaIcap).segments) {
    EXPECT_EQ(s.name.rfind("ps-", 0), std::string::npos)
        << "PS segment in PR-controller path: " << s.name;
  }
}

TEST(Zynq, EightMBReconfigTakesAboutOneFramePeriod) {
  // Paper §IV-B: 8 MB partial bitstream -> ~20 ms at 50 fps.
  const ZynqPlatform p = default_platform();
  const TransferRecord r =
      model_transfer(reconfig_path(p, ReconfigMethod::PlDmaIcap), kEightMiB);
  EXPECT_GT(r.elapsed.as_ms(), 18.0);
  EXPECT_LT(r.elapsed.as_ms(), 23.0);
}

TEST(Zynq, FasterIcapClockRaisesCeiling) {
  ZynqPlatform p = default_platform();
  p.clocks.icap_mhz = 200;
  EXPECT_DOUBLE_EQ(config_port_ceiling_mbps(p), 800.0);
}

}  // namespace
}  // namespace avd::soc
