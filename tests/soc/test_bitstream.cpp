#include "avd/soc/bitstream.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(Bitstream, PaperPartitionYieldsEightMB) {
  const DeviceResources device;
  const ModuleResources partition =
      floorplan_partition(dark_blocks(), device, {});
  const PartialBitstream bits =
      make_partial_bitstream("dark", partition, device, {});
  EXPECT_NEAR(bits.megabytes(), 8.0, 0.1);
  EXPECT_EQ(bits.config_name, "dark");
}

TEST(Bitstream, SizeScalesWithRegion) {
  const DeviceResources device;
  const ModuleResources half{"h", device.lut / 2, device.ff / 2, 0, 0};
  const ModuleResources quarter{"q", device.lut / 4, device.ff / 4, 0, 0};
  const auto b_half = make_partial_bitstream("a", half, device, {});
  const auto b_quarter = make_partial_bitstream("b", quarter, device, {});
  EXPECT_NEAR(static_cast<double>(b_half.bytes) / b_quarter.bytes, 2.0, 0.01);
}

TEST(Bitstream, FullDeviceRegionGivesFullBitstream) {
  const DeviceResources device;
  const ModuleResources all{"all", device.lut, device.ff, device.bram,
                            device.dsp};
  const BitstreamParams params;
  const auto bits = make_partial_bitstream("full", all, device, params);
  EXPECT_EQ(bits.bytes, params.full_device_bytes);
}

TEST(Bitstream, CustomFullDeviceSize) {
  const DeviceResources device;
  BitstreamParams params;
  params.full_device_bytes = 1000000;
  const ModuleResources half{"h", device.lut / 2, 0, 0, 0};
  EXPECT_NEAR(
      static_cast<double>(
          make_partial_bitstream("x", half, device, params).bytes),
      500000.0, 2.0);
}

TEST(Bitstream, MegabytesConversion) {
  PartialBitstream b{"x", 8 * 1024 * 1024};
  EXPECT_DOUBLE_EQ(b.megabytes(), 8.0);
}

}  // namespace
}  // namespace avd::soc
