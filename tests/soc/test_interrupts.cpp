#include "avd/soc/interrupts.hpp"

#include <gtest/gtest.h>

namespace avd::soc {
namespace {

TEST(Interrupts, RaiseAndService) {
  InterruptController ic(Duration::from_ns(500));
  const int line = ic.add_line("dma0");
  EXPECT_FALSE(ic.is_pending(line));

  ic.raise(line, TimePoint{} + Duration::from_us(10));
  EXPECT_TRUE(ic.is_pending(line));
  EXPECT_EQ(ic.pending_count(), 1);

  const auto svc = ic.service_next(TimePoint{} + Duration::from_us(10));
  EXPECT_TRUE(svc.handled);
  EXPECT_EQ(svc.id, line);
  EXPECT_EQ(svc.source, "dma0");
  EXPECT_EQ(svc.handler_entry,
            TimePoint{} + Duration::from_us(10) + Duration::from_ns(500));
  EXPECT_FALSE(ic.is_pending(line));
}

TEST(Interrupts, NothingPendingReturnsUnhandled) {
  InterruptController ic;
  (void)ic.add_line("x");
  EXPECT_FALSE(ic.service_next({0}).handled);
}

TEST(Interrupts, MaskedLinesDoNotBecomePending) {
  InterruptController ic;
  const int line = ic.add_line("x");
  ic.mask(line, true);
  ic.raise(line, {0});
  EXPECT_FALSE(ic.is_pending(line));
  EXPECT_EQ(ic.raise_count(line), 1u);  // raise still counted
  ic.mask(line, false);
  ic.raise(line, {0});
  EXPECT_TRUE(ic.is_pending(line));
}

TEST(Interrupts, FixedPriorityLowestIdFirst) {
  InterruptController ic;
  const int a = ic.add_line("a");
  const int b = ic.add_line("b");
  ic.raise(b, {0});
  ic.raise(a, {0});
  EXPECT_EQ(ic.service_next({0}).id, a);
  EXPECT_EQ(ic.service_next({0}).id, b);
}

TEST(Interrupts, DoubleRaiseCoalesces) {
  InterruptController ic;
  const int line = ic.add_line("x");
  ic.raise(line, {100});
  ic.raise(line, {200});
  EXPECT_EQ(ic.pending_count(), 1);
  EXPECT_EQ(ic.raise_count(line), 2u);
}

TEST(Interrupts, FutureRaiseServicedAtRaiseTime) {
  // A completion IRQ scheduled for the future: servicing "now" enters the
  // handler no earlier than the raise time.
  InterruptController ic(Duration::from_ns(500));
  const int line = ic.add_line("x");
  const TimePoint completes = TimePoint{} + Duration::from_ms(5);
  ic.raise(line, completes);
  const auto svc = ic.service_next({0});
  EXPECT_TRUE(svc.handled);
  EXPECT_EQ(svc.handler_entry, completes + Duration::from_ns(500));
}

TEST(Interrupts, EventLogIntegration) {
  InterruptController ic;
  EventLog log;
  const int line = ic.add_line("vehicle-detection");
  ic.raise(line, {0}, &log);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].source, "vehicle-detection");
}

TEST(Interrupts, BadLineIdThrows) {
  InterruptController ic;
  EXPECT_THROW(ic.raise(0, {0}), std::out_of_range);
  (void)ic.add_line("x");
  EXPECT_THROW(ic.mask(1, true), std::out_of_range);
  EXPECT_THROW((void)ic.is_pending(-1), std::out_of_range);
}

}  // namespace
}  // namespace avd::soc
