#include "avd/soc/axi.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace avd::soc {
namespace {

TransferPath simple_path(std::uint32_t burst = 256) {
  TransferPath p;
  p.name = "test";
  p.segments = {{"a", Duration::from_ns(100), 400.0},
                {"b", Duration::from_ns(50), 800.0}};
  p.burst_bytes = burst;
  p.setup = Duration::from_us(1);
  return p;
}

TEST(TransferPath, BottleneckIsMinimumBandwidth) {
  EXPECT_DOUBLE_EQ(simple_path().bottleneck_mbps(), 400.0);
}

TEST(TransferPath, ZeroBandwidthSegmentsIgnored) {
  TransferPath p = simple_path();
  p.segments.push_back({"latency-only", Duration::from_ns(5), 0.0});
  EXPECT_DOUBLE_EQ(p.bottleneck_mbps(), 400.0);
}

TEST(TransferPath, BurstOverheadSums) {
  EXPECT_EQ(simple_path().burst_overhead(), Duration::from_ns(150));
}

TEST(ModelTransfer, BurstCountRoundsUp) {
  const TransferRecord r = model_transfer(simple_path(256), 1000);
  EXPECT_EQ(r.bursts, 4u);  // ceil(1000/256)
  EXPECT_EQ(r.bytes, 1000u);
}

TEST(ModelTransfer, ElapsedDecomposes) {
  const TransferRecord r = model_transfer(simple_path(), 1 << 20);
  EXPECT_EQ(r.elapsed.ps, (r.payload_time + r.overhead_time).ps);
  EXPECT_GT(r.payload_time.ps, 0u);
  EXPECT_GT(r.overhead_time.ps, 0u);
}

TEST(ModelTransfer, ThroughputBelowBottleneck) {
  const TransferRecord r = model_transfer(simple_path(), 8 << 20);
  EXPECT_LT(r.throughput(), 400.0);
  EXPECT_GT(r.throughput(), 0.0);
}

TEST(ModelTransfer, BiggerBurstsAreFaster) {
  // Same bytes, same segments: larger bursts amortise the fixed latencies.
  const TransferRecord small = model_transfer(simple_path(64), 4 << 20);
  const TransferRecord big = model_transfer(simple_path(1024), 4 << 20);
  EXPECT_GT(big.throughput(), small.throughput());
}

TEST(ModelTransfer, EfficiencyInUnitRange) {
  const TransferRecord r = model_transfer(simple_path(), 1 << 20);
  EXPECT_GT(r.efficiency(), 0.0);
  EXPECT_LT(r.efficiency(), 1.0);
}

TEST(ModelTransfer, ThroughputScalesWithSizeTowardAsymptote) {
  // The setup cost matters less for larger transfers.
  const double t1 = model_transfer(simple_path(), 64 << 10).throughput();
  const double t2 = model_transfer(simple_path(), 8 << 20).throughput();
  EXPECT_GT(t2, t1);
}

TEST(ModelTransfer, InvalidInputsThrow) {
  TransferPath p = simple_path();
  p.burst_bytes = 0;
  EXPECT_THROW(model_transfer(p, 100), std::invalid_argument);

  TransferPath empty;
  empty.burst_bytes = 64;
  EXPECT_THROW(model_transfer(empty, 100), std::invalid_argument);

  TransferPath no_bw;
  no_bw.segments = {{"x", Duration::from_ns(1), 0.0}};
  no_bw.burst_bytes = 64;
  EXPECT_THROW(model_transfer(no_bw, 100), std::invalid_argument);
}

TEST(ModelTransfer, ZeroBytesOnlySetup) {
  const TransferRecord r = model_transfer(simple_path(), 0);
  EXPECT_EQ(r.bursts, 0u);
  EXPECT_EQ(r.payload_time.ps, 0u);
  EXPECT_EQ(r.elapsed, simple_path().setup);
}

// Analytic check: throughput of an N-byte transfer through a single segment
// equals bytes / (setup + bursts*latency + bytes/bw).
TEST(ModelTransfer, MatchesClosedForm) {
  TransferPath p;
  p.segments = {{"only", Duration::from_ns(200), 400.0}};
  p.burst_bytes = 1024;
  p.setup = Duration::from_us(2);
  const std::uint64_t bytes = 2 << 20;
  const TransferRecord r = model_transfer(p, bytes);

  const double bursts = std::ceil(static_cast<double>(bytes) / 1024.0);
  const double elapsed_s =
      2e-6 + bursts * 200e-9 + static_cast<double>(bytes) / (400e6);
  EXPECT_NEAR(r.throughput(), static_cast<double>(bytes) / elapsed_s / 1e6,
              0.5);
}

}  // namespace
}  // namespace avd::soc
