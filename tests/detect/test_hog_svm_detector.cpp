#include "avd/detect/hog_svm_detector.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "avd/image/color.hpp"

namespace avd::det {
namespace {

// Shared fixture: train small models once per suite (training is the slow
// part; every test then probes a different behaviour).
class HogSvmDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::VehiclePatchSpec spec;
    spec.condition = data::LightingCondition::Day;
    spec.n_positive = 150;
    spec.n_negative = 150;
    spec.seed = 100;
    model_ = new HogSvmModel(
        train_hog_svm(data::make_vehicle_patches(spec), "day"));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
  }

  static const HogSvmModel& model() { return *model_; }

 private:
  static HogSvmModel* model_;
};

HogSvmModel* HogSvmDetectorTest::model_ = nullptr;

TEST_F(HogSvmDetectorTest, ModelMetadata) {
  EXPECT_EQ(model().name, "day");
  EXPECT_EQ(model().window, (img::Size{64, 64}));
  EXPECT_EQ(model().class_id, kClassVehicle);
  EXPECT_TRUE(model().svm.trained());
  EXPECT_EQ(model().svm.dimension(),
            model().hog.descriptor_length(model().window));
}

TEST_F(HogSvmDetectorTest, ClassifiesHeldOutPatches) {
  data::VehiclePatchSpec spec;
  spec.condition = data::LightingCondition::Day;
  spec.n_positive = 40;
  spec.n_negative = 40;
  spec.seed = 777;  // held out
  const ml::BinaryCounts counts =
      evaluate_patches(model(), data::make_vehicle_patches(spec));
  EXPECT_GT(counts.accuracy(), 0.85);
}

TEST_F(HogSvmDetectorTest, DecisionRejectsWrongWindowSize) {
  EXPECT_THROW((void)model().decision(img::ImageU8(32, 32)),
               std::invalid_argument);
}

TEST_F(HogSvmDetectorTest, SaveLoadRoundTrip) {
  std::stringstream ss;
  model().save(ss);
  const HogSvmModel back = HogSvmModel::load(ss);
  EXPECT_EQ(back.name, model().name);
  EXPECT_EQ(back.window, model().window);
  ml::Rng rng(9);
  const img::ImageU8 patch =
      data::render_vehicle_patch(data::LightingCondition::Day, {64, 64}, rng);
  EXPECT_NEAR(back.decision(patch), model().decision(patch), 1e-4);
}

TEST_F(HogSvmDetectorTest, SaveRejectsWhitespaceNames) {
  // The text header is whitespace-delimited and load() reads the name with
  // >>, so "day model" would round-trip as name="day" with "model" parsed as
  // the window width. Such names must be rejected at save time, not
  // corrupted at load time.
  for (const char* bad : {"day model", " day", "day\t", "du sk\n", "", " "}) {
    HogSvmModel adversarial = model();
    adversarial.name = bad;
    std::stringstream ss;
    EXPECT_THROW(adversarial.save(ss), std::invalid_argument)
        << "name '" << bad << "' should be rejected";
  }
}

TEST_F(HogSvmDetectorTest, PunctuatedNameRoundTrips) {
  HogSvmModel odd = model();
  odd.name = "day/v2.1_final-candidate";
  std::stringstream ss;
  odd.save(ss);
  EXPECT_EQ(HogSvmModel::load(ss).name, odd.name);
}

TEST_F(HogSvmDetectorTest, LoadBadHeaderThrows) {
  std::stringstream ss("bogus");
  EXPECT_THROW(HogSvmModel::load(ss), std::runtime_error);
}

TEST_F(HogSvmDetectorTest, MultiscaleFindsCenteredVehicle) {
  // Build a frame with one large vehicle; the detector must find it.
  data::SceneGenerator gen(data::LightingCondition::Day, 55);
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Day;
  scene.frame_size = {192, 128};
  scene.horizon_y = 36;
  data::VehicleSpec v;
  v.body = {60, 50, 76, 60};
  scene.vehicles.push_back(v);
  scene.noise_seed = 1;
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));

  SlidingWindowParams params;
  params.score_threshold = 0.0;
  const auto dets = detect_multiscale(gray, model(), params);
  ASSERT_FALSE(dets.empty());
  const MatchResult match = match_detections(dets, {v.body}, 0.3);
  EXPECT_EQ(match.true_positives, 1);
}

TEST_F(HogSvmDetectorTest, MultiscaleNearlyQuietOnEmptyRoad) {
  // The paper's day model has a nonzero false-positive rate (Table I: FP 4 of
  // 25 negatives), so require "few and weak", not "none".
  data::SceneGenerator gen(data::LightingCondition::Day, 66);
  int false_positives = 0;
  for (int i = 0; i < 5; ++i) {
    data::SceneSpec scene = gen.random_scene({192, 128}, 0);
    scene.clutter.clear();
    const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));
    SlidingWindowParams params;
    params.score_threshold = 0.5;
    false_positives +=
        static_cast<int>(detect_multiscale(gray, model(), params).size());
  }
  EXPECT_LE(false_positives, 2);
}

TEST_F(HogSvmDetectorTest, MultiscaleDetectionsCarryModelClass) {
  data::SceneGenerator gen(data::LightingCondition::Day, 77);
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(gen.random_scene({192, 128}, 2)));
  SlidingWindowParams params;
  params.score_threshold = -1.0;  // accept plenty
  for (const Detection& d : detect_multiscale(gray, model(), params))
    EXPECT_EQ(d.class_id, kClassVehicle);
}

TEST_F(HogSvmDetectorTest, UntrainedModelThrows) {
  HogSvmModel empty;
  empty.window = {64, 64};
  EXPECT_THROW((void)detect_multiscale(img::ImageU8(128, 128), empty),
               std::invalid_argument);
}

TEST(HogSvmTraining, EmptyDatasetThrows) {
  EXPECT_THROW(train_hog_svm(data::PatchDataset{}, "x"), std::invalid_argument);
}

TEST(HogSvmTraining, InconsistentPatchSizesThrow) {
  data::PatchDataset ds;
  ds.patches.push_back({img::ImageU8(64, 64), +1, false});
  ds.patches.push_back({img::ImageU8(32, 32), -1, false});
  EXPECT_THROW(train_hog_svm(ds, "x"), std::invalid_argument);
}

TEST(HogSvmTraining, PedestrianWindowAndClass) {
  data::PedestrianPatchSpec spec;
  spec.n_positive = 40;
  spec.n_negative = 40;
  HogSvmTrainOptions opts;
  opts.class_id = kClassPedestrian;
  const HogSvmModel ped =
      train_hog_svm(data::make_pedestrian_patches(spec), "pedestrian", opts);
  EXPECT_EQ(ped.window, (img::Size{32, 64}));
  EXPECT_EQ(ped.class_id, kClassPedestrian);

  data::PedestrianPatchSpec test = spec;
  test.seed = 808;
  EXPECT_GT(evaluate_patches(ped, data::make_pedestrian_patches(test)).accuracy(),
            0.8);
}

TEST(HogSvmTraining, EvaluatePatchCountsAddUp) {
  data::VehiclePatchSpec spec;
  spec.n_positive = 10;
  spec.n_negative = 15;
  spec.seed = 3;
  const data::PatchDataset ds = data::make_vehicle_patches(spec);
  const HogSvmModel m = train_hog_svm(ds, "self");
  const ml::BinaryCounts c = evaluate_patches(m, ds);
  EXPECT_EQ(c.total(), 25u);
  EXPECT_EQ(c.tp + c.fn, 10u);
  EXPECT_EQ(c.tn + c.fp, 15u);
}

}  // namespace
}  // namespace avd::det
