#include "avd/detect/evaluation.hpp"

#include <gtest/gtest.h>

namespace avd::det {
namespace {

TEST(DistanceBin, WidthThresholds) {
  const img::Size frame{400, 300};
  EXPECT_EQ(distance_bin({0, 0, 120, 90}, frame), DistanceBin::Near);  // 30%
  EXPECT_EQ(distance_bin({0, 0, 100, 80}, frame), DistanceBin::Near);  // 25%
  EXPECT_EQ(distance_bin({0, 0, 60, 45}, frame), DistanceBin::Mid);    // 15%
  EXPECT_EQ(distance_bin({0, 0, 40, 30}, frame), DistanceBin::Far);    // 10%
}

TEST(EvaluateFrames, OracleDetectorScoresPerfect) {
  // A detector that is handed the truth (rebuilt from the same seed) must
  // achieve recall 1 / precision 1 — validates the bookkeeping itself.
  FrameEvalSpec spec;
  spec.n_frames = 10;
  spec.seed = 5;

  data::SceneGenerator oracle_gen(spec.condition, spec.seed);
  std::vector<std::vector<Detection>> truth_per_frame;
  for (int f = 0; f < spec.n_frames; ++f) {
    const auto scene =
        oracle_gen.random_scene(spec.frame_size, spec.vehicles_per_frame);
    std::vector<Detection> dets;
    for (const auto& v : scene.vehicles)
      dets.push_back({v.body, 1.0, kClassVehicle});
    truth_per_frame.push_back(std::move(dets));
  }

  int call = 0;
  const FrameEvalResult r = evaluate_frames(
      [&](const img::RgbImage&) { return truth_per_frame[call++]; }, spec);

  EXPECT_EQ(r.frames, 10);
  EXPECT_EQ(r.truth_total, 20);
  EXPECT_DOUBLE_EQ(r.recall(), 1.0);
  EXPECT_DOUBLE_EQ(r.precision(), 1.0);
  EXPECT_DOUBLE_EQ(r.f1(), 1.0);
}

TEST(EvaluateFrames, BlindDetectorScoresZeroRecall) {
  FrameEvalSpec spec;
  spec.n_frames = 5;
  const FrameEvalResult r =
      evaluate_frames([](const img::RgbImage&) { return std::vector<Detection>{}; },
                      spec);
  EXPECT_EQ(r.hits, 0);
  EXPECT_DOUBLE_EQ(r.recall(), 0.0);
  EXPECT_EQ(r.false_positives, 0);
  EXPECT_DOUBLE_EQ(r.f1(), 0.0);
}

TEST(EvaluateFrames, NoiseDetectorScoresZeroPrecision) {
  FrameEvalSpec spec;
  spec.n_frames = 4;
  spec.vehicles_per_frame = 0;  // nothing to find
  const FrameEvalResult r = evaluate_frames(
      [](const img::RgbImage&) {
        return std::vector<Detection>{{{0, 0, 10, 10}, 1.0, kClassVehicle}};
      },
      spec);
  EXPECT_EQ(r.false_positives, 4);
  EXPECT_DOUBLE_EQ(r.precision(), 0.0);
}

TEST(EvaluateFrames, BinCountsPartitionTruth) {
  FrameEvalSpec spec;
  spec.n_frames = 20;
  const FrameEvalResult r = evaluate_frames(
      [](const img::RgbImage&) { return std::vector<Detection>{}; }, spec);
  EXPECT_EQ(r.by_bin[0].truth + r.by_bin[1].truth + r.by_bin[2].truth,
            r.truth_total);
}

TEST(EvaluateFrames, DeterministicInSeed) {
  FrameEvalSpec spec;
  spec.n_frames = 6;
  auto run = [&] {
    return evaluate_frames(
        [](const img::RgbImage& f) {
          // A silly but deterministic detector: one box at the brightest
          // corner quadrant.
          return std::vector<Detection>{
              {{f.width() / 4, f.height() / 2, 80, 60}, 1.0, kClassVehicle}};
        },
        spec);
  };
  const FrameEvalResult a = run();
  const FrameEvalResult b = run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.truth_total, b.truth_total);
}

}  // namespace
}  // namespace avd::det
