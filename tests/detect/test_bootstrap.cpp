#include "avd/detect/bootstrap.hpp"

#include <gtest/gtest.h>

#include "avd/image/color.hpp"

namespace avd::det {
namespace {

data::PatchDataset small_day_set(int n, std::uint64_t seed) {
  data::VehiclePatchSpec spec;
  spec.n_positive = n;
  spec.n_negative = n;
  spec.seed = seed;
  return data::make_vehicle_patches(spec);
}

TEST(Bootstrap, ProducesTrainedModel) {
  BootstrapSpec spec;
  spec.rounds = 1;
  spec.scenes_per_round = 10;
  const HogSvmModel model =
      bootstrap_train_hog_svm(small_day_set(60, 1), "day", spec);
  EXPECT_TRUE(model.svm.trained());
  EXPECT_EQ(model.name, "day");
}

TEST(Bootstrap, ReportsMiningProgress) {
  BootstrapSpec spec;
  spec.rounds = 2;
  spec.scenes_per_round = 15;
  spec.scan.score_threshold = -0.5;  // aggressive scan: plenty to mine
  BootstrapReport report;
  const data::PatchDataset train = small_day_set(50, 2);
  (void)bootstrap_train_hog_svm(train, "day", spec, {}, &report);
  ASSERT_GE(report.mined_per_round.size(), 1u);
  EXPECT_GT(report.mined_per_round[0], 0);
  EXPECT_GT(report.final_training_size, train.size());
}

TEST(Bootstrap, RespectsMiningCap) {
  BootstrapSpec spec;
  spec.rounds = 1;
  spec.scenes_per_round = 20;
  spec.max_new_negatives_per_round = 5;
  spec.scan.score_threshold = -1.0;
  BootstrapReport report;
  (void)bootstrap_train_hog_svm(small_day_set(40, 3), "day", spec, {}, &report);
  ASSERT_EQ(report.mined_per_round.size(), 1u);
  EXPECT_LE(report.mined_per_round[0], 5);
}

TEST(Bootstrap, StopsEarlyWhenNothingMined) {
  BootstrapSpec spec;
  spec.rounds = 5;
  spec.scenes_per_round = 5;
  spec.scan.score_threshold = 100.0;  // nothing will ever fire
  BootstrapReport report;
  (void)bootstrap_train_hog_svm(small_day_set(40, 4), "day", spec, {}, &report);
  ASSERT_EQ(report.mined_per_round.size(), 1u);
  EXPECT_EQ(report.mined_per_round[0], 0);
}

TEST(Bootstrap, ReducesFalsePositivesOnEmptyScenes) {
  const data::PatchDataset train = small_day_set(80, 5);

  auto count_fps = [](const HogSvmModel& model, std::uint64_t seed) {
    data::SceneGenerator gen(data::LightingCondition::Day, seed);
    SlidingWindowParams scan;
    scan.score_threshold = 0.2;
    int fps = 0;
    for (int i = 0; i < 8; ++i) {
      const img::ImageU8 gray = img::rgb_to_gray(
          data::render_scene(gen.random_scene({256, 160}, 0)));
      fps += static_cast<int>(detect_multiscale(gray, model, scan).size());
    }
    return fps;
  };

  const HogSvmModel plain = train_hog_svm(train, "plain");
  BootstrapSpec spec;
  spec.rounds = 2;
  spec.scenes_per_round = 25;
  spec.scan.score_threshold = 0.0;
  const HogSvmModel mined = bootstrap_train_hog_svm(train, "mined", spec);

  EXPECT_LE(count_fps(mined, 909), count_fps(plain, 909));
}

TEST(Bootstrap, KeepsPositiveAccuracy) {
  const data::PatchDataset train = small_day_set(80, 6);
  BootstrapSpec spec;
  spec.rounds = 2;
  spec.scenes_per_round = 20;
  const HogSvmModel model = bootstrap_train_hog_svm(train, "day", spec);
  const ml::BinaryCounts counts =
      evaluate_patches(model, small_day_set(40, 7070));
  EXPECT_GT(counts.recall(), 0.85);  // mining must not destroy sensitivity
}

}  // namespace
}  // namespace avd::det
