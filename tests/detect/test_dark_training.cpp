#include "avd/detect/dark_training.hpp"

#include <gtest/gtest.h>

namespace avd::det {
namespace {

DarkTrainingSpec fast_spec() {
  DarkTrainingSpec spec;
  spec.windows.per_class = 200;
  spec.dbn.pretrain.epochs = 12;
  spec.dbn.finetune_epochs = 50;
  spec.pairing_scenes = 50;
  return spec;
}

TEST(TaillightClassForSize, SizeBands) {
  using data::TaillightClass;
  EXPECT_EQ(taillight_class_for_size(1, 1), TaillightClass::SmallRound);
  EXPECT_EQ(taillight_class_for_size(2, 2), TaillightClass::SmallRound);
  EXPECT_EQ(taillight_class_for_size(4, 4), TaillightClass::LargeRound);
  EXPECT_EQ(taillight_class_for_size(6, 6), TaillightClass::LargeRound);
  EXPECT_EQ(taillight_class_for_size(9, 9), TaillightClass::WideBar);
  EXPECT_EQ(taillight_class_for_size(8, 3), TaillightClass::WideBar);
}

TEST(TrainTaillightDbn, PaperArchitecture) {
  const ml::Dbn dbn = train_taillight_dbn(fast_spec());
  EXPECT_EQ(dbn.input_size(), 81);
  EXPECT_EQ(dbn.classes(), 4);
  ASSERT_EQ(dbn.hidden_layers(), 2u);
  EXPECT_EQ(dbn.rbm(0).hidden(), 20);
  EXPECT_EQ(dbn.rbm(1).hidden(), 8);
}

TEST(TrainTaillightDbn, GeneralisesToHeldOutWindows) {
  const ml::Dbn dbn = train_taillight_dbn(fast_spec());
  data::TaillightWindowSpec held_out;
  held_out.per_class = 50;
  held_out.seed = 24680;
  const auto test = data::make_taillight_windows(held_out);
  int correct = 0;
  for (const auto& w : test) correct += dbn.predict(w.pixels) == w.label;
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.7);
}

TEST(TrainPairingSvm, ProducesUsableModel) {
  const ml::LinearSvm svm = train_pairing_svm(fast_spec());
  EXPECT_EQ(svm.dimension(), DarkVehicleDetector::kPairFeatureCount);

  // A canonical same-vehicle pair: level, similar size, same class.
  TaillightDetection left, right;
  left.center = {50, 60};
  right.center = {90, 60};
  left.blob_area = right.blob_area = 12;
  left.cls = right.cls = data::TaillightClass::LargeRound;
  EXPECT_GT(svm.decision(DarkVehicleDetector::pair_features(left, right)),
            0.0);

  // A wildly mismatched pair: tiny vs huge lamp, different classes.
  TaillightDetection tiny, huge;
  tiny.center = {50, 60};
  huge.center = {90, 63};
  tiny.blob_area = 1;
  huge.blob_area = 200;
  tiny.cls = data::TaillightClass::SmallRound;
  huge.cls = data::TaillightClass::WideBar;
  EXPECT_LT(svm.decision(DarkVehicleDetector::pair_features(tiny, huge)), 0.0);
}

TEST(TrainDarkDetector, EndToEndAccuracyNearPaperClaim) {
  // Paper §III-B: "a subset of SYSU dataset was tested with our detection
  // method and accuracy of 95% is obtained". Expect the same ballpark.
  const DarkVehicleDetector detector = train_dark_detector(fast_spec());
  const ml::BinaryCounts counts =
      evaluate_dark_frames(detector, 40, 40, {480, 270}, 13579);
  EXPECT_GT(counts.accuracy(), 0.85);
  EXPECT_EQ(counts.total(), 80u);
}

TEST(TrainDarkDetector, DeterministicUnderSeed) {
  const DarkTrainingSpec spec = fast_spec();
  const DarkVehicleDetector a = train_dark_detector(spec);
  const DarkVehicleDetector b = train_dark_detector(spec);
  data::SceneGenerator gen(data::LightingCondition::Dark, 2);
  const img::RgbImage frame =
      data::render_scene(gen.random_scene({480, 270}, 2));
  const auto da = a.detect(frame);
  const auto db = b.detect(frame);
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].box, db[i].box);
    EXPECT_DOUBLE_EQ(da[i].score, db[i].score);
  }
}

TEST(EvaluateDarkFrames, CountsPartition) {
  const DarkVehicleDetector detector = train_dark_detector(fast_spec());
  const ml::BinaryCounts c =
      evaluate_dark_frames(detector, 10, 15, {480, 270}, 3);
  EXPECT_EQ(c.tp + c.fn, 10u);
  EXPECT_EQ(c.tn + c.fp, 15u);
}

}  // namespace
}  // namespace avd::det
