#include "avd/detect/multi_model_scan.hpp"

#include <gtest/gtest.h>

#include "avd/image/color.hpp"

namespace avd::det {
namespace {

std::vector<Detection> filter_class(const std::vector<Detection>& dets,
                                    int class_id) {
  std::vector<Detection> out;
  for (const Detection& d : dets)
    if (d.class_id == class_id) out.push_back(d);
  return out;
}

class MultiModelScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::VehiclePatchSpec vspec;
    vspec.n_positive = vspec.n_negative = 80;
    vspec.seed = 11;
    vehicle_ = new HogSvmModel(
        train_hog_svm(data::make_vehicle_patches(vspec), "vehicle"));

    data::AnimalPatchSpec aspec;
    aspec.n_positive = aspec.n_negative = 80;
    aspec.seed = 12;
    HogSvmTrainOptions opts;
    opts.class_id = kClassAnimal;
    animal_ = new HogSvmModel(
        train_hog_svm(data::make_animal_patches(aspec), "animal", opts));
  }
  static void TearDownTestSuite() {
    delete vehicle_;
    delete animal_;
    vehicle_ = nullptr;
    animal_ = nullptr;
  }
  static const HogSvmModel& vehicle() { return *vehicle_; }
  static const HogSvmModel& animal() { return *animal_; }

  // A daylight countryside frame with one vehicle and one animal.
  static data::SceneSpec mixed_scene() {
    data::SceneSpec scene;
    scene.condition = data::LightingCondition::Day;
    scene.frame_size = {256, 160};
    scene.horizon_y = 48;
    data::VehicleSpec v;
    v.body = {30, 70, 80, 62};
    scene.vehicles.push_back(v);
    data::AnimalSpec a;
    a.body = {160, 80, 70, 52};
    scene.animals.push_back(a);
    scene.noise_seed = 9;
    return scene;
  }

 private:
  static HogSvmModel* vehicle_;
  static HogSvmModel* animal_;
};

HogSvmModel* MultiModelScanTest::vehicle_ = nullptr;
HogSvmModel* MultiModelScanTest::animal_ = nullptr;

TEST_F(MultiModelScanTest, FindsBothClassesInOneScan) {
  const data::SceneSpec scene = mixed_scene();
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  const auto dets = detect_multiscale_multi(gray, models, params);

  const MatchResult vmatch = match_detections(
      filter_class(dets, kClassVehicle), {scene.vehicles[0].body}, 0.25);
  const MatchResult amatch = match_detections(
      filter_class(dets, kClassAnimal), {scene.animals[0].body}, 0.25);
  EXPECT_EQ(vmatch.true_positives, 1);
  EXPECT_EQ(amatch.true_positives, 1);
}

TEST_F(MultiModelScanTest, AgreesWithSingleModelScan) {
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(mixed_scene()));
  SlidingWindowParams params;
  params.score_threshold = 0.3;

  const HogSvmModel* solo[] = {&vehicle()};
  const auto multi = detect_multiscale_multi(gray, solo, params);
  const auto single = detect_multiscale(gray, vehicle(), params);
  ASSERT_EQ(multi.size(), single.size());
  for (std::size_t i = 0; i < multi.size(); ++i) {
    EXPECT_EQ(multi[i].box, single[i].box);
    EXPECT_DOUBLE_EQ(multi[i].score, single[i].score);
  }
}

TEST_F(MultiModelScanTest, DifferentWindowSizesCoexist) {
  // vehicle 64x64, animal 64x48: both scan from the same grids.
  EXPECT_NE(vehicle().window, animal().window);
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(mixed_scene()));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  EXPECT_NO_THROW((void)detect_multiscale_multi(gray, models, {}));
}

TEST_F(MultiModelScanTest, ThreeModelsOneFrontEnd) {
  // Vehicle + animal + pedestrian behind one shared HOG front end — the
  // richest configuration the fabric could carry.
  data::PedestrianPatchSpec pspec;
  pspec.n_positive = pspec.n_negative = 60;
  HogSvmTrainOptions popts;
  popts.class_id = kClassPedestrian;
  const HogSvmModel ped = train_hog_svm(
      data::make_pedestrian_patches(pspec), "pedestrian", popts);

  data::SceneSpec scene = mixed_scene();
  data::PedestrianSpec walker;
  walker.body = {120, 84, 24, 52};
  scene.pedestrians.push_back(walker);
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));

  const HogSvmModel* models[] = {&vehicle(), &animal(), &ped};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  const auto dets = detect_multiscale_multi(gray, models, params);

  bool saw_vehicle = false, saw_animal = false;
  for (const Detection& d : dets) {
    saw_vehicle |= d.class_id == kClassVehicle;
    saw_animal |= d.class_id == kClassAnimal;
  }
  EXPECT_TRUE(saw_vehicle);
  EXPECT_TRUE(saw_animal);
}

TEST_F(MultiModelScanTest, RejectsMismatchedHogGeometry) {
  HogSvmModel odd = vehicle();
  odd.hog.cell_size = 4;
  const HogSvmModel* models[] = {&vehicle(), &odd};
  EXPECT_THROW((void)detect_multiscale_multi(img::ImageU8(128, 128), models, {}),
               std::invalid_argument);
}

TEST_F(MultiModelScanTest, RejectsEmptyAndUntrained) {
  EXPECT_THROW(
      (void)detect_multiscale_multi(img::ImageU8(128, 128), {}, {}),
      std::invalid_argument);
  HogSvmModel untrained;
  untrained.window = {64, 64};
  const HogSvmModel* models[] = {&untrained};
  EXPECT_THROW(
      (void)detect_multiscale_multi(img::ImageU8(128, 128), models, {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace avd::det
