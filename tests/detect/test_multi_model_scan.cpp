#include "avd/detect/multi_model_scan.hpp"

#include <gtest/gtest.h>

#include "avd/image/color.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::det {
namespace {

void expect_identical(const std::vector<Detection>& a,
                      const std::vector<Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].box, b[i].box) << "detection " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "detection " << i;  // bit-equal
    EXPECT_EQ(a[i].class_id, b[i].class_id) << "detection " << i;
  }
}

std::vector<Detection> filter_class(const std::vector<Detection>& dets,
                                    int class_id) {
  std::vector<Detection> out;
  for (const Detection& d : dets)
    if (d.class_id == class_id) out.push_back(d);
  return out;
}

class MultiModelScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::VehiclePatchSpec vspec;
    vspec.n_positive = vspec.n_negative = 80;
    vspec.seed = 11;
    vehicle_ = new HogSvmModel(
        train_hog_svm(data::make_vehicle_patches(vspec), "vehicle"));

    data::AnimalPatchSpec aspec;
    aspec.n_positive = aspec.n_negative = 80;
    aspec.seed = 12;
    HogSvmTrainOptions opts;
    opts.class_id = kClassAnimal;
    animal_ = new HogSvmModel(
        train_hog_svm(data::make_animal_patches(aspec), "animal", opts));
  }
  static void TearDownTestSuite() {
    delete vehicle_;
    delete animal_;
    vehicle_ = nullptr;
    animal_ = nullptr;
  }
  static const HogSvmModel& vehicle() { return *vehicle_; }
  static const HogSvmModel& animal() { return *animal_; }

  // A daylight countryside frame with one vehicle and one animal.
  static data::SceneSpec mixed_scene() {
    data::SceneSpec scene;
    scene.condition = data::LightingCondition::Day;
    scene.frame_size = {256, 160};
    scene.horizon_y = 48;
    data::VehicleSpec v;
    v.body = {30, 70, 80, 62};
    scene.vehicles.push_back(v);
    data::AnimalSpec a;
    a.body = {160, 80, 70, 52};
    scene.animals.push_back(a);
    scene.noise_seed = 9;
    return scene;
  }

 private:
  static HogSvmModel* vehicle_;
  static HogSvmModel* animal_;
};

HogSvmModel* MultiModelScanTest::vehicle_ = nullptr;
HogSvmModel* MultiModelScanTest::animal_ = nullptr;

TEST_F(MultiModelScanTest, FindsBothClassesInOneScan) {
  const data::SceneSpec scene = mixed_scene();
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  const auto dets = detect_multiscale_multi(gray, models, params);

  const MatchResult vmatch = match_detections(
      filter_class(dets, kClassVehicle), {scene.vehicles[0].body}, 0.25);
  const MatchResult amatch = match_detections(
      filter_class(dets, kClassAnimal), {scene.animals[0].body}, 0.25);
  EXPECT_EQ(vmatch.true_positives, 1);
  EXPECT_EQ(amatch.true_positives, 1);
}

TEST_F(MultiModelScanTest, AgreesWithSingleModelScan) {
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(mixed_scene()));
  SlidingWindowParams params;
  params.score_threshold = 0.3;

  const HogSvmModel* solo[] = {&vehicle()};
  const auto multi = detect_multiscale_multi(gray, solo, params);
  const auto single = detect_multiscale(gray, vehicle(), params);
  ASSERT_EQ(multi.size(), single.size());
  for (std::size_t i = 0; i < multi.size(); ++i) {
    EXPECT_EQ(multi[i].box, single[i].box);
    EXPECT_DOUBLE_EQ(multi[i].score, single[i].score);
  }
}

TEST_F(MultiModelScanTest, DifferentWindowSizesCoexist) {
  // vehicle 64x64, animal 64x48: both scan from the same grids.
  EXPECT_NE(vehicle().window, animal().window);
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(mixed_scene()));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  EXPECT_NO_THROW((void)detect_multiscale_multi(gray, models, {}));
}

TEST_F(MultiModelScanTest, ThreeModelsOneFrontEnd) {
  // Vehicle + animal + pedestrian behind one shared HOG front end — the
  // richest configuration the fabric could carry.
  data::PedestrianPatchSpec pspec;
  pspec.n_positive = pspec.n_negative = 60;
  HogSvmTrainOptions popts;
  popts.class_id = kClassPedestrian;
  const HogSvmModel ped = train_hog_svm(
      data::make_pedestrian_patches(pspec), "pedestrian", popts);

  data::SceneSpec scene = mixed_scene();
  data::PedestrianSpec walker;
  walker.body = {120, 84, 24, 52};
  scene.pedestrians.push_back(walker);
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));

  const HogSvmModel* models[] = {&vehicle(), &animal(), &ped};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  const auto dets = detect_multiscale_multi(gray, models, params);

  bool saw_vehicle = false, saw_animal = false;
  for (const Detection& d : dets) {
    saw_vehicle |= d.class_id == kClassVehicle;
    saw_animal |= d.class_id == kClassAnimal;
  }
  EXPECT_TRUE(saw_vehicle);
  EXPECT_TRUE(saw_animal);
}

TEST_F(MultiModelScanTest, RejectsMismatchedHogGeometry) {
  HogSvmModel odd = vehicle();
  odd.hog.cell_size = 4;
  const HogSvmModel* models[] = {&vehicle(), &odd};
  EXPECT_THROW((void)detect_multiscale_multi(img::ImageU8(128, 128), models, {}),
               std::invalid_argument);
}

TEST_F(MultiModelScanTest, RejectsEmptyAndUntrained) {
  EXPECT_THROW(
      (void)detect_multiscale_multi(img::ImageU8(128, 128), {}, {}),
      std::invalid_argument);
  HogSvmModel untrained;
  untrained.window = {64, 64};
  const HogSvmModel* models[] = {&untrained};
  EXPECT_THROW(
      (void)detect_multiscale_multi(img::ImageU8(128, 128), models, {}),
      std::invalid_argument);
}

TEST(WindowAnchorPositions, CoversTheEdgeWhenStrideDivides) {
  EXPECT_EQ(window_anchor_positions(16, 8, 2),
            (std::vector<int>{0, 2, 4, 6, 8}));
}

TEST(WindowAnchorPositions, ClampsFinalAnchorOffStride) {
  // 31 cells, 8-cell window, stride 2: the last in-stride anchor is 22, but
  // the edge window starts at 23 — previously skipped, now clamped in.
  EXPECT_EQ(window_anchor_positions(31, 8, 2),
            (std::vector<int>{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 23}));
}

TEST(WindowAnchorPositions, ExactFitYieldsSingleAnchor) {
  EXPECT_EQ(window_anchor_positions(8, 8, 2), (std::vector<int>{0}));
}

TEST(WindowAnchorPositions, EmptyWhenWindowDoesNotFit) {
  EXPECT_TRUE(window_anchor_positions(7, 8, 1).empty());
  EXPECT_TRUE(window_anchor_positions(0, 8, 1).empty());
  EXPECT_TRUE(window_anchor_positions(8, 0, 1).empty());
  EXPECT_TRUE(window_anchor_positions(8, 8, 0).empty());
}

TEST(WindowAnchorPositions, NoDuplicateWhenLastStrideLandsOnEdge) {
  EXPECT_EQ(window_anchor_positions(12, 8, 4), (std::vector<int>{0, 4}));
}

TEST_F(MultiModelScanTest, BlockGridScannerBitIdenticalToReference) {
  // The tentpole guarantee: the block-grid scanner produces detection-for-
  // detection identical output to the scalar per-window oracle — same boxes,
  // bit-equal scores — with no pool.
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(mixed_scene()));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  expect_identical(detect_multiscale_multi(gray, models, params),
                   detect_multiscale_multi_reference(gray, models, params));
}

TEST_F(MultiModelScanTest, ParallelScanIdenticalForEveryPoolSize) {
  // Determinism across thread counts: no pool, a zero-thread pool, and a
  // 4-thread pool must all reproduce the reference exactly.
  const img::ImageU8 gray =
      img::rgb_to_gray(data::render_scene(mixed_scene()));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  const auto reference =
      detect_multiscale_multi_reference(gray, models, params);

  for (const int threads : {0, 1, 4}) {
    runtime::ThreadPool pool(threads);
    params.pool = &pool;
    expect_identical(detect_multiscale_multi(gray, models, params), reference);
  }
}

TEST_F(MultiModelScanTest, OffStrideGeometryStaysIdentical) {
  // A frame whose cell grid is off-stride in both axes exercises the
  // clamped edge anchors through both paths.
  data::SceneSpec scene = mixed_scene();
  scene.frame_size = {250, 150};
  scene.vehicles[0].body = {30, 60, 70, 56};
  scene.animals[0].body = {150, 70, 64, 48};
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));
  const HogSvmModel* models[] = {&vehicle(), &animal()};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  params.stride_cells = 2;
  runtime::ThreadPool pool(4);
  params.pool = &pool;
  expect_identical(detect_multiscale_multi(gray, models, params),
                   detect_multiscale_multi_reference(gray, models, params));
}

TEST_F(MultiModelScanTest, FindsVehicleFlushAgainstFrameBorder) {
  // Regression for the edge-skip bug: with stride 3 on a 250x150 frame
  // (31x18 cells) the old loop's last anchors fell 2 cells short of the
  // right edge and 1 short of the bottom, so a vehicle flush against the
  // corner was never scanned at its own position. The clamped edge anchor
  // covers it (IoU vs truth ~0.78; the best pre-fix window managed ~0.4).
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Day;
  scene.frame_size = {250, 150};
  scene.horizon_y = 48;
  data::VehicleSpec v;
  v.body = {186, 86, 64, 64};  // flush against right and bottom borders
  scene.vehicles.push_back(v);
  scene.noise_seed = 21;
  const img::ImageU8 gray = img::rgb_to_gray(data::render_scene(scene));

  const HogSvmModel* models[] = {&vehicle()};
  SlidingWindowParams params;
  params.score_threshold = 0.0;
  params.stride_cells = 3;
  const auto dets = detect_multiscale_multi(gray, models, params);

  const MatchResult match =
      match_detections(filter_class(dets, kClassVehicle),
                       {scene.vehicles[0].body}, 0.5);
  EXPECT_EQ(match.true_positives, 1);
  expect_identical(dets,
                   detect_multiscale_multi_reference(gray, models, params));
}

}  // namespace
}  // namespace avd::det
