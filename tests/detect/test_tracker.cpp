#include "avd/detect/tracker.hpp"

#include <gtest/gtest.h>

namespace avd::det {
namespace {

Detection det(int x, int y, int w = 40, int h = 30, int cls = kClassVehicle,
              double score = 1.0) {
  return {{x, y, w, h}, score, cls};
}

TEST(IouTracker, NewDetectionStartsUnconfirmedTrack) {
  IouTracker tracker;
  const auto confirmed = tracker.update({det(10, 10)});
  EXPECT_TRUE(confirmed.empty());  // min_hits = 2
  EXPECT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].hits, 1);
}

TEST(IouTracker, TrackConfirmsAfterMinHits) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10)});
  const auto confirmed = tracker.update({det(12, 11)});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].hits, 2);
  EXPECT_EQ(confirmed[0].id, 0u);
}

TEST(IouTracker, IdStableAcrossFrames) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({det(14, 10)});
  const auto confirmed = tracker.update({det(18, 10)});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].id, 0u);
  EXPECT_EQ(tracker.total_tracks_created(), 1u);
}

TEST(IouTracker, TwoObjectsTwoTracks) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10), det(200, 50)});
  const auto confirmed = tracker.update({det(12, 10), det(204, 52)});
  EXPECT_EQ(confirmed.size(), 2u);
  EXPECT_EQ(tracker.total_tracks_created(), 2u);
}

TEST(IouTracker, CoastsThroughSingleMiss) {
  // The reconfiguration-dropped-frame scenario: one frame without
  // detections must not kill the track.
  IouTracker tracker;
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({det(14, 10)});
  (void)tracker.update({});  // dropped frame
  const auto confirmed = tracker.update({det(22, 10)});
  ASSERT_EQ(confirmed.size(), 1u);
  EXPECT_EQ(confirmed[0].id, 0u);
  EXPECT_EQ(tracker.total_tracks_created(), 1u);
}

TEST(IouTracker, MotionCoastingFollowsVelocity) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({det(20, 10)});  // dx = +10
  (void)tracker.update({});             // coast: expect box near x=30
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_NEAR(tracker.tracks()[0].box.x, 30, 1);
}

TEST(IouTracker, TrackDiesAfterMaxMisses) {
  TrackerConfig cfg;
  cfg.max_misses = 2;
  IouTracker tracker(cfg);
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({});
  (void)tracker.update({});
  EXPECT_FALSE(tracker.tracks().empty());  // misses == max, still alive
  (void)tracker.update({});
  EXPECT_TRUE(tracker.tracks().empty());
}

TEST(IouTracker, ClassesNeverAssociate) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10, 40, 30, kClassVehicle)});
  (void)tracker.update({det(10, 10, 40, 30, kClassPedestrian)});
  EXPECT_EQ(tracker.total_tracks_created(), 2u);
}

TEST(IouTracker, GreedyPrefersBestOverlap) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({det(10, 10)});
  // Two candidates: the closer one must claim the track; the other spawns.
  (void)tracker.update({det(11, 10), det(40, 12)});
  EXPECT_EQ(tracker.total_tracks_created(), 2u);
  // Track 0 stayed near x=11.
  const Track& t0 = tracker.tracks()[0];
  EXPECT_EQ(t0.id, 0u);
  EXPECT_LT(t0.box.x, 20);
}

TEST(IouTracker, NoFalseAssociationAcrossDistance) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10)});
  (void)tracker.update({det(300, 200)});  // far away: a new track
  EXPECT_EQ(tracker.total_tracks_created(), 2u);
}

TEST(IouTracker, AgeAndScoreBookkeeping) {
  IouTracker tracker;
  (void)tracker.update({det(10, 10, 40, 30, kClassVehicle, 0.5)});
  (void)tracker.update({det(10, 10, 40, 30, kClassVehicle, 0.9)});
  const Track& t = tracker.tracks()[0];
  EXPECT_EQ(t.age, 1);
  EXPECT_DOUBLE_EQ(t.last_score, 0.9);
}

TEST(IouTracker, LongSequenceStability) {
  // A vehicle drifting right for 30 frames with 20% dropped detections:
  // exactly one track survives the whole pass.
  IouTracker tracker;
  for (int f = 0; f < 30; ++f) {
    std::vector<Detection> dets;
    if (f % 5 != 4) dets.push_back(det(10 + 4 * f, 20));
    (void)tracker.update(dets);
  }
  EXPECT_EQ(tracker.total_tracks_created(), 1u);
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_GT(tracker.tracks()[0].hits, 20);
}

}  // namespace
}  // namespace avd::det
