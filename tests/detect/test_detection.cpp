#include "avd/detect/detection.hpp"

#include <gtest/gtest.h>

namespace avd::det {
namespace {

TEST(Nms, EmptyInput) {
  EXPECT_TRUE(non_max_suppression({}).empty());
}

TEST(Nms, KeepsHighestOfOverlappingPair) {
  std::vector<Detection> dets{
      {{0, 0, 10, 10}, 0.5, kClassVehicle},
      {{1, 1, 10, 10}, 0.9, kClassVehicle},
  };
  const auto kept = non_max_suppression(dets, 0.4);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].score, 0.9);
}

TEST(Nms, KeepsDisjointDetections) {
  std::vector<Detection> dets{
      {{0, 0, 10, 10}, 0.5, kClassVehicle},
      {{50, 50, 10, 10}, 0.9, kClassVehicle},
  };
  EXPECT_EQ(non_max_suppression(dets, 0.4).size(), 2u);
}

TEST(Nms, OutputSortedByScore) {
  std::vector<Detection> dets{
      {{0, 0, 5, 5}, 0.1, 0},
      {{20, 0, 5, 5}, 0.9, 0},
      {{40, 0, 5, 5}, 0.5, 0},
  };
  const auto kept = non_max_suppression(dets);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GT(kept[0].score, kept[1].score);
  EXPECT_GT(kept[1].score, kept[2].score);
}

TEST(Nms, DifferentClassesNeverSuppressEachOther) {
  std::vector<Detection> dets{
      {{0, 0, 10, 10}, 0.9, kClassVehicle},
      {{0, 0, 10, 10}, 0.5, kClassPedestrian},
  };
  EXPECT_EQ(non_max_suppression(dets, 0.4).size(), 2u);
}

TEST(Nms, ThresholdBoundary) {
  // IoU exactly at threshold: "more than" semantics keep the second box.
  std::vector<Detection> dets{
      {{0, 0, 10, 10}, 0.9, 0},
      {{5, 0, 10, 10}, 0.5, 0},  // IoU = 50/150 = 1/3
  };
  EXPECT_EQ(non_max_suppression(dets, 1.0 / 3.0).size(), 2u);
  EXPECT_EQ(non_max_suppression(dets, 0.3).size(), 1u);
}

TEST(Nms, ChainSuppression) {
  // A suppresses B; C overlaps B but not A: C must survive (greedy NMS
  // only suppresses against kept detections).
  std::vector<Detection> dets{
      {{0, 0, 10, 10}, 0.9, 0},   // A
      {{6, 0, 10, 10}, 0.8, 0},   // B overlaps A heavily? IoU(A,B)=4*10/(200-40)=0.25
      {{12, 0, 10, 10}, 0.7, 0},  // C overlaps B (0.25), not A
  };
  const auto kept = non_max_suppression(dets, 0.2);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].box.x, 0);
  EXPECT_EQ(kept[1].box.x, 12);
}

TEST(Match, PerfectDetections) {
  const std::vector<Detection> dets{{{10, 10, 20, 20}, 1.0, 0}};
  const std::vector<img::Rect> truth{{10, 10, 20, 20}};
  const MatchResult r = match_detections(dets, truth, 0.5);
  EXPECT_EQ(r.true_positives, 1);
  EXPECT_EQ(r.false_negatives, 0);
  EXPECT_EQ(r.false_positives, 0);
}

TEST(Match, MissAndFalseAlarm) {
  const std::vector<Detection> dets{{{100, 100, 20, 20}, 1.0, 0}};
  const std::vector<img::Rect> truth{{10, 10, 20, 20}};
  const MatchResult r = match_detections(dets, truth, 0.3);
  EXPECT_EQ(r.true_positives, 0);
  EXPECT_EQ(r.false_negatives, 1);
  EXPECT_EQ(r.false_positives, 1);
}

TEST(Match, EachDetectionMatchesAtMostOneTruth) {
  // One detection covering two ground-truth boxes can satisfy only one.
  const std::vector<Detection> dets{{{0, 0, 30, 10}, 1.0, 0}};
  const std::vector<img::Rect> truth{{0, 0, 30, 10}, {2, 0, 30, 10}};
  const MatchResult r = match_detections(dets, truth, 0.3);
  EXPECT_EQ(r.true_positives, 1);
  EXPECT_EQ(r.false_negatives, 1);
  EXPECT_EQ(r.false_positives, 0);
}

TEST(Match, EmptyInputs) {
  const MatchResult none = match_detections({}, {});
  EXPECT_EQ(none.true_positives, 0);
  EXPECT_EQ(none.false_negatives, 0);
  EXPECT_EQ(none.false_positives, 0);

  const MatchResult misses = match_detections({}, {{0, 0, 5, 5}});
  EXPECT_EQ(misses.false_negatives, 1);

  const MatchResult alarms =
      match_detections({{{0, 0, 5, 5}, 1.0, 0}}, {});
  EXPECT_EQ(alarms.false_positives, 1);
}

TEST(Match, PrefersBestOverlap) {
  const std::vector<Detection> dets{
      {{0, 0, 10, 10}, 1.0, 0},
      {{2, 2, 10, 10}, 0.9, 0},
  };
  const std::vector<img::Rect> truth{{2, 2, 10, 10}};
  const MatchResult r = match_detections(dets, truth, 0.3);
  EXPECT_EQ(r.true_positives, 1);
  EXPECT_EQ(r.false_positives, 1);
}

}  // namespace
}  // namespace avd::det
