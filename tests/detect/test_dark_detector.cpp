#include "avd/detect/dark_detector.hpp"

#include <gtest/gtest.h>

#include "avd/detect/dark_training.hpp"
#include "avd/image/color.hpp"
#include "avd/image/draw.hpp"
#include "avd/runtime/thread_pool.hpp"

namespace avd::det {
namespace {

void expect_same_taillights(const std::vector<TaillightDetection>& got,
                            const std::vector<TaillightDetection>& want,
                            const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].center.x, want[i].center.x) << label << " light " << i;
    EXPECT_EQ(got[i].center.y, want[i].center.y) << label << " light " << i;
    EXPECT_EQ(got[i].cls, want[i].cls) << label << " light " << i;
    // Exact, not approximate: the batched forward is bit-identical to the
    // per-window path, so the aggregated confidence must match to the bit.
    EXPECT_EQ(got[i].confidence, want[i].confidence) << label << " light " << i;
    EXPECT_EQ(got[i].blob_box, want[i].blob_box) << label << " light " << i;
    EXPECT_EQ(got[i].blob_area, want[i].blob_area) << label << " light " << i;
  }
}

// One trained detector shared across the suite (training dominates runtime).
class DarkDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DarkTrainingSpec spec;
    spec.windows.per_class = 120;
    spec.dbn.pretrain.epochs = 12;
    spec.dbn.finetune_epochs = 30;
    spec.pairing_scenes = 60;
    detector_ = new DarkVehicleDetector(train_dark_detector(spec));
  }
  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
  }
  static const DarkVehicleDetector& detector() { return *detector_; }

  // A hand-built dark scene with one vehicle at a known place.
  static data::SceneSpec one_vehicle_scene() {
    data::SceneSpec scene;
    scene.condition = data::LightingCondition::Dark;
    scene.frame_size = {480, 270};
    scene.horizon_y = 100;
    data::VehicleSpec v;
    v.body = {180, 120, 120, 95};
    scene.vehicles.push_back(v);
    scene.noise_seed = 77;
    return scene;
  }

 private:
  static DarkVehicleDetector* detector_;
};

DarkVehicleDetector* DarkDetectorTest::detector_ = nullptr;

TEST_F(DarkDetectorTest, ConstructionValidatesShapes) {
  ml::Dbn wrong_dbn({10, 5}, 4);
  EXPECT_THROW(DarkVehicleDetector(wrong_dbn, detector().pairing_svm()),
               std::invalid_argument);
  ml::Dbn right_dbn({81, 20, 8}, 4);
  ml::LinearSvm wrong_svm(std::vector<float>(3, 0.0f), 0.0f);
  EXPECT_THROW(DarkVehicleDetector(right_dbn, wrong_svm),
               std::invalid_argument);
}

TEST_F(DarkDetectorTest, PreprocessProducesDownsampledBinary) {
  const img::RgbImage frame = data::render_scene(one_vehicle_scene());
  const img::ImageU8 mask = detector().preprocess(frame);
  EXPECT_EQ(mask.size(), (img::Size{160, 90}));  // 480x270 / 3
  for (auto v : mask.pixels()) EXPECT_TRUE(v == 0 || v == 255);
}

TEST_F(DarkDetectorTest, PreprocessKeepsTaillightsDropsBackground) {
  const data::SceneSpec scene = one_vehicle_scene();
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  const auto [lb, rb] = scene.vehicles[0].taillight_boxes();
  const int f = detector().config().downsample_factor;
  const img::Rect lb_ds = img::inflated(img::scaled(lb, 1.0 / f, 1.0 / f), 2);
  EXPECT_GT(img::count_nonzero(mask.crop(lb_ds)), 0u);
  // Most of the frame stays background.
  EXPECT_LT(img::count_nonzero(mask),
            static_cast<std::size_t>(mask.pixel_count() / 20));
}

TEST_F(DarkDetectorTest, DetectTaillightsFindsBothLamps) {
  const data::SceneSpec scene = one_vehicle_scene();
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  const auto lights = detector().detect_taillights(mask);
  EXPECT_GE(lights.size(), 2u);
  for (const TaillightDetection& t : lights) {
    EXPECT_NE(t.cls, data::TaillightClass::NotTaillight);
    EXPECT_GE(t.confidence, detector().config().dbn_min_confidence);
  }
}

TEST_F(DarkDetectorTest, DetectFindsVehicleBox) {
  const data::SceneSpec scene = one_vehicle_scene();
  const auto dets = detector().detect(data::render_scene(scene));
  ASSERT_FALSE(dets.empty());
  const MatchResult m = match_detections(dets, {scene.vehicles[0].body}, 0.25);
  EXPECT_EQ(m.true_positives, 1);
}

TEST_F(DarkDetectorTest, MostlyQuietOnVehicleFreeDarkScene) {
  // Vehicle-free night scenes still contain paired red signal heads and
  // wet-road streaks; a small false-alarm rate is expected (the paper's own
  // accuracy is 95%, not 100%).
  data::SceneGenerator gen(data::LightingCondition::Dark, 31);
  int false_alarms = 0;
  for (int i = 0; i < 10; ++i) {
    const auto dets =
        detector().detect(data::render_scene(gen.random_scene({480, 270}, 0)));
    false_alarms += !dets.empty();
  }
  EXPECT_LE(false_alarms, 3);
}

TEST_F(DarkDetectorTest, SingleRedLightIsNotAVehicle) {
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Dark;
  scene.frame_size = {480, 270};
  scene.horizon_y = 100;
  scene.distractors.push_back({{240, 135}, 4, {255, 45, 30}});
  scene.noise_seed = 5;
  EXPECT_TRUE(detector().detect(data::render_scene(scene)).empty());
}

TEST_F(DarkDetectorTest, WhiteHeadlightPairIsNotAVehicle) {
  // Oncoming headlights: pass no chroma gate, so nothing is even thresholded.
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Dark;
  scene.frame_size = {480, 270};
  scene.horizon_y = 100;
  scene.distractors.push_back({{200, 180}, 5, {255, 250, 235}});
  scene.distractors.push_back({{240, 180}, 5, {255, 250, 235}});
  scene.noise_seed = 6;
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  EXPECT_EQ(img::count_nonzero(mask), 0u);
}

TEST_F(DarkDetectorTest, PairFeaturesShape) {
  TaillightDetection a, b;
  a.center = {10, 50};
  b.center = {60, 52};
  a.blob_area = 9;
  b.blob_area = 16;
  a.cls = b.cls = data::TaillightClass::LargeRound;
  const auto f = DarkVehicleDetector::pair_features(a, b);
  EXPECT_EQ(f.size(), DarkVehicleDetector::kPairFeatureCount);
  EXPECT_FLOAT_EQ(f[0], 0.5f);        // dx / 100
  EXPECT_FLOAT_EQ(f[1], 0.2f);        // |dy| / 10
  EXPECT_FLOAT_EQ(f[4], 0.75f);       // size ratio 3/4
  EXPECT_FLOAT_EQ(f[5], 1.0f);        // class agreement
}

TEST_F(DarkDetectorTest, PairingRespectsGeometricGate) {
  // Two taillights vertically stacked can never pair.
  TaillightDetection a, b;
  a.center = {100, 40};
  b.center = {100, 90};
  a.cls = b.cls = data::TaillightClass::LargeRound;
  a.blob_area = b.blob_area = 10;
  a.confidence = b.confidence = 1.0;
  EXPECT_TRUE(detector().pair_taillights({a, b}).empty());
}

TEST_F(DarkDetectorTest, PairedBoxSpansLights) {
  TaillightDetection a, b;
  a.center = {60, 60};
  b.center = {100, 60};
  a.cls = b.cls = data::TaillightClass::LargeRound;
  a.blob_area = b.blob_area = 12;
  a.confidence = b.confidence = 1.0;
  const auto pairs = detector().pair_taillights({a, b});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].box.contains(img::Point{80, 60}));
  EXPECT_GE(pairs[0].box.width, 40);
}

TEST_F(DarkDetectorTest, DownsampleFactorValidation) {
  DarkDetectorConfig bad;
  bad.downsample_factor = 0;
  EXPECT_THROW(
      DarkVehicleDetector(detector().dbn(), detector().pairing_svm(), bad),
      std::invalid_argument);
}

TEST_F(DarkDetectorTest, NonDivisibleFrameStillWorks) {
  // 479x271 is not divisible by 3: the nearest-neighbour fallback must kick
  // in and the pipeline must not throw.
  data::SceneGenerator gen(data::LightingCondition::Dark, 13);
  const img::RgbImage frame =
      data::render_scene(gen.random_scene({479, 271}, 1));
  EXPECT_NO_THROW((void)detector().detect(frame));
}

TEST(DarkWindowAnchors, StrideCoversSpanWithClampedEdge) {
  // [0, 20) with win 9, stride 2: interior anchors 0,2,..,10 and the final
  // anchor clamped to 20-9=11 — the right/bottom edge is always scanned.
  EXPECT_EQ(dark_window_anchors(0, 20, 9, 2),
            (std::vector<int>{0, 2, 4, 6, 8, 10, 11}));
  // Stride landing exactly on end-win adds no duplicate.
  EXPECT_EQ(dark_window_anchors(0, 13, 9, 2), (std::vector<int>{0, 2, 4}));
  // Non-zero begin offsets every anchor.
  EXPECT_EQ(dark_window_anchors(5, 18, 9, 3), (std::vector<int>{5, 8, 9}));
}

TEST(DarkWindowAnchors, ExactFitYieldsSingleAnchor) {
  EXPECT_EQ(dark_window_anchors(4, 13, 9, 2), (std::vector<int>{4}));
}

TEST(DarkWindowAnchors, DegenerateSpansAreEmpty) {
  EXPECT_TRUE(dark_window_anchors(0, 8, 9, 2).empty());   // window too wide
  EXPECT_TRUE(dark_window_anchors(0, 20, 9, 0).empty());  // bad stride
  EXPECT_TRUE(dark_window_anchors(0, 20, 0, 2).empty());  // bad window
  EXPECT_TRUE(dark_window_anchors(10, 10, 9, 2).empty()); // empty span
}

TEST_F(DarkDetectorTest, BatchedScanMatchesReferenceExactly) {
  // The tentpole equivalence contract: batched gather/score/scatter must
  // reproduce the per-window reference detection-for-detection, for every
  // batch size and every pool size.
  data::SceneGenerator gen(data::LightingCondition::Dark, 97);
  runtime::ThreadPool pool1(1), pool3(3);
  for (int s = 0; s < 3; ++s) {
    const img::ImageU8 mask =
        detector().preprocess(data::render_scene(gen.random_scene({480, 270}, 2)));
    const auto want = detector().detect_taillights_reference(mask);

    for (const int batch : {1, 7, 256}) {
      DarkDetectorConfig cfg = detector().config();
      cfg.batch_windows = batch;
      DarkVehicleDetector dut(detector().dbn(), detector().pairing_svm(), cfg);
      expect_same_taillights(dut.detect_taillights(mask), want, "no pool");
      dut.set_scan_pool(&pool1);
      expect_same_taillights(dut.detect_taillights(mask), want, "pool(1)");
      dut.set_scan_pool(&pool3);
      expect_same_taillights(dut.detect_taillights(mask), want, "pool(3)");
    }
  }
}

TEST_F(DarkDetectorTest, FindsTaillightsFlushWithFrameBorder) {
  // Regression for the dark-scan border skip: before the clamped final
  // anchor, a blob whose neighbourhood ended off-stride lost its edge
  // windows, so lamps hugging the frame border were under-voted. Park the
  // vehicle hard against the right frame edge.
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Dark;
  scene.frame_size = {480, 270};
  scene.horizon_y = 100;
  data::VehicleSpec v;
  v.body = {480 - 121, 120, 120, 95};  // body right edge 1 px from border
  scene.vehicles.push_back(v);
  scene.noise_seed = 42;
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  const auto lights = detector().detect_taillights(mask);
  EXPECT_GE(lights.size(), 2u);
  const auto dets = detector().detect(data::render_scene(scene));
  const MatchResult m = match_detections(dets, {scene.vehicles[0].body}, 0.25);
  EXPECT_EQ(m.true_positives, 1);
}

// --- DarkScanPool: training-free equivalence + race coverage --------------
//
// An untrained DBN and a zero SVM make these tests cheap enough for the TSan
// lane (scripts/check.sh runs DarkScanPool.* under ThreadSanitizer): the
// point is the concurrency structure of the batched scan, not accuracy.

img::ImageU8 speckled_mask() {
  img::ImageU8 mask(160, 90, 0);
  // A spread of blob shapes: dots, bars, an L, and border-flush blobs that
  // exercise the clamped anchors (right edge, bottom edge, corner).
  const auto dot = [&](int x, int y, int w, int h) {
    for (int dy = 0; dy < h; ++dy)
      for (int dx = 0; dx < w; ++dx) mask.at(x + dx, y + dy) = 255;
  };
  dot(10, 10, 2, 2);
  dot(40, 12, 8, 3);   // wide bar
  dot(70, 30, 4, 4);
  dot(71, 50, 1, 1);   // single pixel
  dot(20, 60, 3, 12);  // tall streak
  dot(157, 40, 3, 3);  // flush with right edge
  dot(80, 87, 5, 3);   // flush with bottom edge
  dot(158, 88, 2, 2);  // corner
  return mask;
}

DarkVehicleDetector untrained_detector(DarkDetectorConfig cfg = {}) {
  cfg.dbn_min_confidence = 0.0;  // accept whatever the untrained DBN votes
  return {ml::Dbn({81, 20, 8}, 4, 1),
          ml::LinearSvm(std::vector<float>(6, 0.0f), 0.0f), cfg};
}

TEST(DarkScanPool, BatchedMatchesReferenceAcrossBatchSizes) {
  const img::ImageU8 mask = speckled_mask();
  const DarkVehicleDetector ref = untrained_detector();
  const auto want = ref.detect_taillights_reference(mask);
  EXPECT_FALSE(want.empty());
  for (const int batch : {1, 3, 16, 1024}) {
    DarkDetectorConfig cfg;
    cfg.batch_windows = batch;
    const DarkVehicleDetector dut = untrained_detector(cfg);
    expect_same_taillights(dut.detect_taillights(mask), want, "batch");
  }
}

TEST(DarkScanPool, PooledScanMatchesSerialScan) {
  const img::ImageU8 mask = speckled_mask();
  DarkVehicleDetector det = untrained_detector();
  const auto want = det.detect_taillights(mask);
  runtime::ThreadPool pool(3);
  det.set_scan_pool(&pool);
  ASSERT_EQ(det.scan_pool(), &pool);
  for (int repeat = 0; repeat < 5; ++repeat)
    expect_same_taillights(det.detect_taillights(mask), want, "pooled");
}

TEST(DarkScanPool, ConcurrentCallersShareOnePool) {
  // StreamServer runs several detect workers against one shared detector;
  // the batched scan must tolerate concurrent callers on the same pool.
  const img::ImageU8 mask = speckled_mask();
  DarkVehicleDetector det = untrained_detector();
  const auto want = det.detect_taillights(mask);
  runtime::ThreadPool scan_pool(2), callers(3);
  det.set_scan_pool(&scan_pool);
  callers.run_indexed(6, [&](int) {
    expect_same_taillights(det.detect_taillights(mask), want, "concurrent");
  });
}

TEST(DarkScanPool, EmptyMaskYieldsNoDetections) {
  const img::ImageU8 mask(160, 90, 0);
  DarkVehicleDetector det = untrained_detector();
  runtime::ThreadPool pool(2);
  det.set_scan_pool(&pool);
  EXPECT_TRUE(det.detect_taillights(mask).empty());
  EXPECT_TRUE(det.detect_taillights_reference(mask).empty());
}

}  // namespace
}  // namespace avd::det
