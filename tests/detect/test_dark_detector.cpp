#include "avd/detect/dark_detector.hpp"

#include <gtest/gtest.h>

#include "avd/detect/dark_training.hpp"
#include "avd/image/color.hpp"
#include "avd/image/draw.hpp"

namespace avd::det {
namespace {

// One trained detector shared across the suite (training dominates runtime).
class DarkDetectorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DarkTrainingSpec spec;
    spec.windows.per_class = 120;
    spec.dbn.pretrain.epochs = 12;
    spec.dbn.finetune_epochs = 30;
    spec.pairing_scenes = 60;
    detector_ = new DarkVehicleDetector(train_dark_detector(spec));
  }
  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
  }
  static const DarkVehicleDetector& detector() { return *detector_; }

  // A hand-built dark scene with one vehicle at a known place.
  static data::SceneSpec one_vehicle_scene() {
    data::SceneSpec scene;
    scene.condition = data::LightingCondition::Dark;
    scene.frame_size = {480, 270};
    scene.horizon_y = 100;
    data::VehicleSpec v;
    v.body = {180, 120, 120, 95};
    scene.vehicles.push_back(v);
    scene.noise_seed = 77;
    return scene;
  }

 private:
  static DarkVehicleDetector* detector_;
};

DarkVehicleDetector* DarkDetectorTest::detector_ = nullptr;

TEST_F(DarkDetectorTest, ConstructionValidatesShapes) {
  ml::Dbn wrong_dbn({10, 5}, 4);
  EXPECT_THROW(DarkVehicleDetector(wrong_dbn, detector().pairing_svm()),
               std::invalid_argument);
  ml::Dbn right_dbn({81, 20, 8}, 4);
  ml::LinearSvm wrong_svm(std::vector<float>(3, 0.0f), 0.0f);
  EXPECT_THROW(DarkVehicleDetector(right_dbn, wrong_svm),
               std::invalid_argument);
}

TEST_F(DarkDetectorTest, PreprocessProducesDownsampledBinary) {
  const img::RgbImage frame = data::render_scene(one_vehicle_scene());
  const img::ImageU8 mask = detector().preprocess(frame);
  EXPECT_EQ(mask.size(), (img::Size{160, 90}));  // 480x270 / 3
  for (auto v : mask.pixels()) EXPECT_TRUE(v == 0 || v == 255);
}

TEST_F(DarkDetectorTest, PreprocessKeepsTaillightsDropsBackground) {
  const data::SceneSpec scene = one_vehicle_scene();
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  const auto [lb, rb] = scene.vehicles[0].taillight_boxes();
  const int f = detector().config().downsample_factor;
  const img::Rect lb_ds = img::inflated(img::scaled(lb, 1.0 / f, 1.0 / f), 2);
  EXPECT_GT(img::count_nonzero(mask.crop(lb_ds)), 0u);
  // Most of the frame stays background.
  EXPECT_LT(img::count_nonzero(mask),
            static_cast<std::size_t>(mask.pixel_count() / 20));
}

TEST_F(DarkDetectorTest, DetectTaillightsFindsBothLamps) {
  const data::SceneSpec scene = one_vehicle_scene();
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  const auto lights = detector().detect_taillights(mask);
  EXPECT_GE(lights.size(), 2u);
  for (const TaillightDetection& t : lights) {
    EXPECT_NE(t.cls, data::TaillightClass::NotTaillight);
    EXPECT_GE(t.confidence, detector().config().dbn_min_confidence);
  }
}

TEST_F(DarkDetectorTest, DetectFindsVehicleBox) {
  const data::SceneSpec scene = one_vehicle_scene();
  const auto dets = detector().detect(data::render_scene(scene));
  ASSERT_FALSE(dets.empty());
  const MatchResult m = match_detections(dets, {scene.vehicles[0].body}, 0.25);
  EXPECT_EQ(m.true_positives, 1);
}

TEST_F(DarkDetectorTest, MostlyQuietOnVehicleFreeDarkScene) {
  // Vehicle-free night scenes still contain paired red signal heads and
  // wet-road streaks; a small false-alarm rate is expected (the paper's own
  // accuracy is 95%, not 100%).
  data::SceneGenerator gen(data::LightingCondition::Dark, 31);
  int false_alarms = 0;
  for (int i = 0; i < 10; ++i) {
    const auto dets =
        detector().detect(data::render_scene(gen.random_scene({480, 270}, 0)));
    false_alarms += !dets.empty();
  }
  EXPECT_LE(false_alarms, 3);
}

TEST_F(DarkDetectorTest, SingleRedLightIsNotAVehicle) {
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Dark;
  scene.frame_size = {480, 270};
  scene.horizon_y = 100;
  scene.distractors.push_back({{240, 135}, 4, {255, 45, 30}});
  scene.noise_seed = 5;
  EXPECT_TRUE(detector().detect(data::render_scene(scene)).empty());
}

TEST_F(DarkDetectorTest, WhiteHeadlightPairIsNotAVehicle) {
  // Oncoming headlights: pass no chroma gate, so nothing is even thresholded.
  data::SceneSpec scene;
  scene.condition = data::LightingCondition::Dark;
  scene.frame_size = {480, 270};
  scene.horizon_y = 100;
  scene.distractors.push_back({{200, 180}, 5, {255, 250, 235}});
  scene.distractors.push_back({{240, 180}, 5, {255, 250, 235}});
  scene.noise_seed = 6;
  const img::ImageU8 mask = detector().preprocess(data::render_scene(scene));
  EXPECT_EQ(img::count_nonzero(mask), 0u);
}

TEST_F(DarkDetectorTest, PairFeaturesShape) {
  TaillightDetection a, b;
  a.center = {10, 50};
  b.center = {60, 52};
  a.blob_area = 9;
  b.blob_area = 16;
  a.cls = b.cls = data::TaillightClass::LargeRound;
  const auto f = DarkVehicleDetector::pair_features(a, b);
  EXPECT_EQ(f.size(), DarkVehicleDetector::kPairFeatureCount);
  EXPECT_FLOAT_EQ(f[0], 0.5f);        // dx / 100
  EXPECT_FLOAT_EQ(f[1], 0.2f);        // |dy| / 10
  EXPECT_FLOAT_EQ(f[4], 0.75f);       // size ratio 3/4
  EXPECT_FLOAT_EQ(f[5], 1.0f);        // class agreement
}

TEST_F(DarkDetectorTest, PairingRespectsGeometricGate) {
  // Two taillights vertically stacked can never pair.
  TaillightDetection a, b;
  a.center = {100, 40};
  b.center = {100, 90};
  a.cls = b.cls = data::TaillightClass::LargeRound;
  a.blob_area = b.blob_area = 10;
  a.confidence = b.confidence = 1.0;
  EXPECT_TRUE(detector().pair_taillights({a, b}).empty());
}

TEST_F(DarkDetectorTest, PairedBoxSpansLights) {
  TaillightDetection a, b;
  a.center = {60, 60};
  b.center = {100, 60};
  a.cls = b.cls = data::TaillightClass::LargeRound;
  a.blob_area = b.blob_area = 12;
  a.confidence = b.confidence = 1.0;
  const auto pairs = detector().pair_taillights({a, b});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].box.contains(img::Point{80, 60}));
  EXPECT_GE(pairs[0].box.width, 40);
}

TEST_F(DarkDetectorTest, DownsampleFactorValidation) {
  DarkDetectorConfig bad;
  bad.downsample_factor = 0;
  EXPECT_THROW(
      DarkVehicleDetector(detector().dbn(), detector().pairing_svm(), bad),
      std::invalid_argument);
}

TEST_F(DarkDetectorTest, NonDivisibleFrameStillWorks) {
  // 479x271 is not divisible by 3: the nearest-neighbour fallback must kick
  // in and the pipeline must not throw.
  data::SceneGenerator gen(data::LightingCondition::Dark, 13);
  const img::RgbImage frame =
      data::render_scene(gen.random_scene({479, 271}, 1));
  EXPECT_NO_THROW((void)detector().detect(frame));
}

}  // namespace
}  // namespace avd::det
