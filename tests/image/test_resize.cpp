#include "avd/image/resize.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

ImageU8 gradient_image(int w, int h) {
  ImageU8 img(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img(x, y) = static_cast<std::uint8_t>((x * 255) / std::max(1, w - 1));
  return img;
}

TEST(ResizeBilinear, IdentityWhenSameSize) {
  const ImageU8 src = gradient_image(8, 6);
  EXPECT_EQ(resize_bilinear(src, src.size()), src);
}

TEST(ResizeBilinear, ConstantImageStaysConstant) {
  const ImageU8 src(10, 10, 123);
  const ImageU8 out = resize_bilinear(src, {7, 3});
  for (auto v : out.pixels()) EXPECT_EQ(v, 123);
}

TEST(ResizeBilinear, OutputDimensionsExact) {
  const ImageU8 out = resize_bilinear(gradient_image(100, 50), {33, 17});
  EXPECT_EQ(out.size(), (Size{33, 17}));
}

TEST(ResizeBilinear, HdtvToDarkPipelineSize) {
  // The dark pipeline's 1920x1080 -> 640x360 reduction (paper Fig. 4).
  const ImageU8 out = resize_bilinear(gradient_image(1920, 1080), {640, 360});
  EXPECT_EQ(out.size(), (Size{640, 360}));
  // Monotone gradient must stay monotone after resampling.
  for (int x = 1; x < 640; ++x) EXPECT_LE(out(x - 1, 180), out(x, 180));
}

TEST(ResizeBilinear, DegenerateTargetThrows) {
  EXPECT_THROW(resize_bilinear(gradient_image(4, 4), {0, 4}),
               std::invalid_argument);
  EXPECT_THROW(resize_bilinear(ImageU8(), {4, 4}), std::invalid_argument);
}

TEST(ResizeBilinear, RgbResizesAllPlanes) {
  RgbImage rgb(8, 8);
  rgb.fill({10, 20, 30});
  const RgbImage out = resize_bilinear(rgb, {4, 4});
  EXPECT_EQ(out.pixel(2, 2), (RgbPixel{10, 20, 30}));
}

TEST(ResizeNearest, PreservesBinaryValues) {
  ImageU8 src(8, 8, 0);
  src(3, 3) = 255;
  const ImageU8 out = resize_nearest(src, {16, 16});
  for (auto v : out.pixels()) EXPECT_TRUE(v == 0 || v == 255);
}

TEST(ResizeNearest, UpscaleReplicatesPixels) {
  ImageU8 src(2, 1);
  src(0, 0) = 10;
  src(1, 0) = 20;
  const ImageU8 out = resize_nearest(src, {4, 1});
  EXPECT_EQ(out(0, 0), 10);
  EXPECT_EQ(out(1, 0), 10);
  EXPECT_EQ(out(2, 0), 20);
  EXPECT_EQ(out(3, 0), 20);
}

TEST(ResizeNearest, IdentityWhenSameSize) {
  const ImageU8 src = gradient_image(8, 6);
  EXPECT_EQ(resize_nearest(src, src.size()), src);
}

TEST(ResizeNearest, DownscalePicksCentrePixels) {
  // Golden align-centres mapping: 9 -> 3 maps output centres to source
  // coordinates 1, 4, 7. The old top-left mapping picked 0, 3, 6 — shifted
  // half a source pixel up-left of the bilinear convention.
  ImageU8 src(9, 1);
  for (int x = 0; x < 9; ++x) src(x, 0) = static_cast<std::uint8_t>(x * 10);
  const ImageU8 out = resize_nearest(src, {3, 1});
  EXPECT_EQ(out(0, 0), 10);
  EXPECT_EQ(out(1, 0), 40);
  EXPECT_EQ(out(2, 0), 70);
}

TEST(ResizeNearest, CentrePixelSurvivesCentredDownscale) {
  // A mark at the exact centre of a 9x9 mask must land at the centre of the
  // 3x3 output. Under the old mapping the samples fell at {0,3,6} and the
  // centre pixel (4,4) vanished — masks drifted relative to the
  // bilinear-resized frames they annotate (e.g. the dark pipeline's
  // taillight mask).
  ImageU8 src(9, 9, 0);
  src(4, 4) = 255;
  const ImageU8 out = resize_nearest(src, {3, 3});
  EXPECT_EQ(out(1, 1), 255);
  std::size_t set = 0;
  for (auto v : out.pixels()) set += v != 0;
  EXPECT_EQ(set, 1u);
}

TEST(ResizeNearest, AgreesWithBilinearOnConstantRegions) {
  // On a piecewise-constant image both conventions sample the same source
  // pixel for every output position, so the two resizers must agree exactly.
  ImageU8 src(8, 8, 40);
  for (int y = 0; y < 8; ++y)
    for (int x = 4; x < 8; ++x) src(x, y) = 200;
  const ImageU8 nearest = resize_nearest(src, {4, 4});
  const ImageU8 bilinear = resize_bilinear(src, {4, 4});
  EXPECT_EQ(nearest, bilinear);
}

TEST(DownsampleBox, AveragesBlocks) {
  ImageU8 src(4, 2);
  // Left 2x2 block: 0,0,4,4 -> mean 2. Right block: all 100.
  src(0, 0) = 0;
  src(1, 0) = 0;
  src(0, 1) = 4;
  src(1, 1) = 4;
  for (int y = 0; y < 2; ++y)
    for (int x = 2; x < 4; ++x) src(x, y) = 100;
  const ImageU8 out = downsample_box(src, 2);
  EXPECT_EQ(out.size(), (Size{2, 1}));
  EXPECT_EQ(out(0, 0), 2);
  EXPECT_EQ(out(1, 0), 100);
}

TEST(DownsampleBox, NonDivisibleThrows) {
  EXPECT_THROW(downsample_box(ImageU8(5, 4), 2), std::invalid_argument);
  EXPECT_THROW(downsample_box(ImageU8(4, 4), 0), std::invalid_argument);
}

TEST(DownsampleOr, KeepsSinglePixelBlob) {
  // A lone set pixel must survive OR pooling — the distant-taillight case.
  ImageU8 src(9, 9, 0);
  src(4, 4) = 255;
  const ImageU8 out = downsample_or(src, 3);
  EXPECT_EQ(out.size(), (Size{3, 3}));
  EXPECT_EQ(out(1, 1), 255);
  std::size_t set = 0;
  for (auto v : out.pixels()) set += v != 0;
  EXPECT_EQ(set, 1u);
}

TEST(DownsampleOr, AllZeroStaysZero) {
  const ImageU8 out = downsample_or(ImageU8(6, 6, 0), 3);
  for (auto v : out.pixels()) EXPECT_EQ(v, 0);
}

TEST(DownsampleOr, MeanPoolingWouldLoseWhatOrKeeps) {
  // Demonstrates why the dark pipeline uses OR pooling: a 1/9 duty blob
  // averages to 28, below any sane threshold, but OR keeps it saturated.
  ImageU8 src(3, 3, 0);
  src(0, 0) = 255;
  EXPECT_EQ(downsample_box(src, 3)(0, 0), 28);
  EXPECT_EQ(downsample_or(src, 3)(0, 0), 255);
}

// Parameterised sweep: downsample_or output size is exact for factors
// dividing the dimensions, and output is binary.
class DownsampleOrSweep : public ::testing::TestWithParam<int> {};

TEST_P(DownsampleOrSweep, SizeAndBinaryInvariant) {
  const int f = GetParam();
  ImageU8 src(24, 12, 0);
  src(7, 7) = 200;  // non-255 non-zero counts as set
  const ImageU8 out = downsample_or(src, f);
  EXPECT_EQ(out.size(), (Size{24 / f, 12 / f}));
  for (auto v : out.pixels()) EXPECT_TRUE(v == 0 || v == 255);
}

INSTANTIATE_TEST_SUITE_P(Factors, DownsampleOrSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 12));

}  // namespace
}  // namespace avd::img
