#include "avd/image/filter.hpp"

#include <gtest/gtest.h>

#include "avd/image/stats.hpp"
#include "avd/image/threshold.hpp"

namespace avd::img {
namespace {

TEST(Median3x3, ConstantImageUnchanged) {
  const ImageU8 src(8, 8, 77);
  EXPECT_EQ(median3x3(src), src);
}

TEST(Median3x3, RemovesIsolatedSpeck) {
  ImageU8 src(9, 9, 0);
  src(4, 4) = 255;
  const ImageU8 out = median3x3(src);
  EXPECT_EQ(count_nonzero(out), 0u);
}

TEST(Median3x3, FillsIsolatedHole) {
  ImageU8 src(9, 9, 255);
  src(4, 4) = 0;
  const ImageU8 out = median3x3(src);
  EXPECT_EQ(out(4, 4), 255);
}

TEST(Median3x3, PreservesSolidBlockInterior) {
  ImageU8 src(12, 12, 0);
  for (int y = 3; y <= 8; ++y)
    for (int x = 3; x <= 8; ++x) src(x, y) = 255;
  const ImageU8 out = median3x3(src);
  for (int y = 4; y <= 7; ++y)
    for (int x = 4; x <= 7; ++x) EXPECT_EQ(out(x, y), 255);
  // Corners of the block lose to majority background.
  EXPECT_EQ(out(3, 3), 0);
}

TEST(Median3x3, BinaryStaysBinary) {
  ImageU8 src(10, 10, 0);
  for (int i = 0; i < 20; ++i) src((i * 7) % 10, (i * 3) % 10) = 255;
  const ImageU8 out = median3x3(src);  // named: pixels() must not dangle
  for (auto v : out.pixels()) EXPECT_TRUE(v == 0 || v == 255);
}

TEST(Median3x3, MedianOfGrayNeighborhood) {
  // 3x3 image holding 10..90: centre output is the exact median 50.
  ImageU8 src(3, 3);
  for (int i = 0; i < 9; ++i)
    src(i % 3, i / 3) = static_cast<std::uint8_t>((i + 1) * 10);
  EXPECT_EQ(median3x3(src)(1, 1), 50);
}

TEST(GaussianBlur, NonPositiveSigmaIsIdentity) {
  ImageU8 src(6, 6, 0);
  src(3, 3) = 200;
  EXPECT_EQ(gaussian_blur(src, 0.0), src);
  EXPECT_EQ(gaussian_blur(src, -1.0), src);
}

TEST(GaussianBlur, ConstantImageUnchanged) {
  const ImageU8 src(8, 8, 99);
  const ImageU8 out = gaussian_blur(src, 1.5);
  for (auto v : out.pixels()) EXPECT_NEAR(v, 99, 1);
}

TEST(GaussianBlur, SpreadsImpulse) {
  ImageU8 src(15, 15, 0);
  src(7, 7) = 255;
  const ImageU8 out = gaussian_blur(src, 1.0);
  EXPECT_LT(out(7, 7), 255);
  EXPECT_GT(out(7, 7), out(9, 7));
  EXPECT_GT(out(8, 7), 0);
  // Symmetry of the kernel.
  EXPECT_EQ(out(6, 7), out(8, 7));
  EXPECT_EQ(out(7, 6), out(7, 8));
}

TEST(GaussianBlur, ApproximatelyConservesMass) {
  ImageU8 src(21, 21, 0);
  src(10, 10) = 200;
  const ImageU8 out = gaussian_blur(src, 1.2);
  std::uint64_t mass = 0;
  for (auto v : out.pixels()) mass += v;
  EXPECT_NEAR(static_cast<double>(mass), 200.0, 20.0);
}

TEST(GaussianBlur, LargerSigmaBlursMore) {
  ImageU8 src(31, 31, 0);
  src(15, 15) = 255;
  const ImageU8 narrow = gaussian_blur(src, 0.8);
  const ImageU8 wide = gaussian_blur(src, 2.5);
  EXPECT_GT(narrow(15, 15), wide(15, 15));
}

TEST(GaussianBlur, ReducesNoiseVariance) {
  ImageU8 noisy(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      noisy(x, y) = static_cast<std::uint8_t>(128 + ((x * 31 + y * 17) % 41) - 20);
  EXPECT_LT(stddev_intensity(gaussian_blur(noisy, 1.5)),
            stddev_intensity(noisy));
}

}  // namespace
}  // namespace avd::img
