#include "avd/image/blobs.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

TEST(Blobs, EmptyMaskHasNoBlobs) {
  EXPECT_TRUE(find_blobs(ImageU8(8, 8, 0)).empty());
  EXPECT_TRUE(find_blobs(ImageU8()).empty());
}

TEST(Blobs, SingleBlobGeometry) {
  ImageU8 mask(10, 10, 0);
  for (int y = 2; y <= 4; ++y)
    for (int x = 3; x <= 6; ++x) mask(x, y) = 255;
  const auto blobs = find_blobs(mask);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].bbox, (Rect{3, 2, 4, 3}));
  EXPECT_EQ(blobs[0].area, 12);
  EXPECT_DOUBLE_EQ(blobs[0].centroid_x, 4.5);
  EXPECT_DOUBLE_EQ(blobs[0].centroid_y, 3.0);
  EXPECT_DOUBLE_EQ(blobs[0].extent(), 1.0);
}

TEST(Blobs, TwoSeparateBlobs) {
  ImageU8 mask(10, 10, 0);
  mask(1, 1) = 255;
  mask(8, 8) = 255;
  const auto blobs = find_blobs(mask);
  ASSERT_EQ(blobs.size(), 2u);
  EXPECT_EQ(blobs[0].bbox, (Rect{1, 1, 1, 1}));  // scan order
  EXPECT_EQ(blobs[1].bbox, (Rect{8, 8, 1, 1}));
}

TEST(Blobs, DiagonalConnectivityDiffers) {
  ImageU8 mask(4, 4, 0);
  mask(1, 1) = 255;
  mask(2, 2) = 255;
  EXPECT_EQ(find_blobs(mask, Connectivity::Eight).size(), 1u);
  EXPECT_EQ(find_blobs(mask, Connectivity::Four).size(), 2u);
}

TEST(Blobs, MinAreaFiltersSmallComponents) {
  ImageU8 mask(10, 10, 0);
  mask(0, 0) = 255;  // area 1
  for (int x = 4; x < 8; ++x) mask(x, 4) = 255;  // area 4
  const auto blobs = find_blobs(mask, Connectivity::Eight, 2);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 4);
}

TEST(Blobs, LabelsMatchBlobOrder) {
  ImageU8 mask(6, 6, 0);
  mask(0, 0) = 255;
  mask(5, 5) = 255;
  const LabelResult lr = label_components(mask);
  ASSERT_EQ(lr.blobs.size(), 2u);
  EXPECT_EQ(lr.labels(0, 0), 1);
  EXPECT_EQ(lr.labels(5, 5), 2);
  EXPECT_EQ(lr.labels(3, 3), 0);
}

TEST(Blobs, RejectedComponentsLeaveNoLabels) {
  ImageU8 mask(6, 6, 0);
  mask(0, 0) = 255;  // filtered by min_area=2
  mask(3, 3) = 255;
  mask(3, 4) = 255;
  const LabelResult lr = label_components(mask, Connectivity::Eight, 2);
  ASSERT_EQ(lr.blobs.size(), 1u);
  EXPECT_EQ(lr.labels(0, 0), 0);  // erased
  EXPECT_EQ(lr.labels(3, 3), 1);
}

TEST(Blobs, SnakeShapedComponentIsOne) {
  // A winding 1-px path: exercises the BFS against deep recursion designs.
  ImageU8 mask(20, 20, 0);
  int x = 0, y = 0;
  for (int i = 0; i < 19; ++i) mask(i, 0) = 255;
  for (int i = 0; i < 19; ++i) mask(18, i) = 255;
  for (int i = 18; i >= 0; --i) mask(i, 18) = 255;
  (void)x;
  (void)y;
  EXPECT_EQ(find_blobs(mask).size(), 1u);
}

TEST(Blobs, FullFrameBlob) {
  const auto blobs = find_blobs(ImageU8(32, 16, 255));
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 512);
  EXPECT_EQ(blobs[0].bbox, (Rect{0, 0, 32, 16}));
}

TEST(Blobs, ExtentAndAspectOfBar) {
  ImageU8 mask(12, 12, 0);
  for (int x = 2; x < 10; ++x) mask(x, 5) = 255;  // 8x1 bar
  const auto blobs = find_blobs(mask);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_DOUBLE_EQ(blobs[0].aspect(), 8.0);
  EXPECT_DOUBLE_EQ(blobs[0].extent(), 1.0);
}

TEST(Blobs, ExtentOfSparseDiagonal) {
  ImageU8 mask(8, 8, 0);
  for (int i = 0; i < 5; ++i) mask(i, i) = 255;
  const auto blobs = find_blobs(mask, Connectivity::Eight);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_NEAR(blobs[0].extent(), 5.0 / 25.0, 1e-12);
}

TEST(Blobs, MinAreaBoundaryIsInclusive) {
  // Exactly min_area survives; min_area - 1 is dropped.
  ImageU8 mask(10, 10, 0);
  for (int x = 0; x < 3; ++x) mask(x, 1) = 255;  // area 3
  for (int x = 5; x < 7; ++x) mask(x, 5) = 255;  // area 2
  const auto blobs = find_blobs(mask, Connectivity::Eight, 3);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].area, 3);
  EXPECT_EQ(find_blobs(mask, Connectivity::Eight, 4).size(), 0u);
  EXPECT_EQ(find_blobs(mask, Connectivity::Eight, 2).size(), 2u);
}

TEST(Blobs, AntiDiagonalStaircaseConnectivity) {
  // A down-left staircase touches only corner-to-corner: one blob under
  // 8-connectivity, one blob per pixel under 4-connectivity.
  ImageU8 mask(8, 8, 0);
  for (int i = 0; i < 5; ++i) mask(6 - i, i) = 255;
  EXPECT_EQ(find_blobs(mask, Connectivity::Eight).size(), 1u);
  EXPECT_EQ(find_blobs(mask, Connectivity::Four).size(), 5u);
}

TEST(Blobs, TJunctionIsOneBlobUnderBothConnectivities) {
  ImageU8 mask(7, 7, 0);
  for (int x = 1; x < 6; ++x) mask(x, 2) = 255;
  for (int y = 2; y < 6; ++y) mask(3, y) = 255;
  EXPECT_EQ(find_blobs(mask, Connectivity::Four).size(), 1u);
  EXPECT_EQ(find_blobs(mask, Connectivity::Eight).size(), 1u);
}

TEST(Blobs, BorderTouchingBlobsKeepTightBoxes) {
  // Blobs flush with every frame edge: the labelling must not clip or wrap.
  ImageU8 mask(12, 9, 0);
  mask(0, 0) = 255;                                // top-left corner
  for (int x = 10; x < 12; ++x) mask(x, 4) = 255;  // right edge
  for (int y = 7; y < 9; ++y) mask(5, y) = 255;    // bottom edge
  mask(11, 8) = 255;                               // bottom-right corner
  const auto blobs = find_blobs(mask);
  ASSERT_EQ(blobs.size(), 4u);
  EXPECT_EQ(blobs[0].bbox, (Rect{0, 0, 1, 1}));
  EXPECT_EQ(blobs[1].bbox, (Rect{10, 4, 2, 1}));
  EXPECT_EQ(blobs[2].bbox, (Rect{5, 7, 1, 2}));
  EXPECT_EQ(blobs[3].bbox, (Rect{11, 8, 1, 1}));
  EXPECT_DOUBLE_EQ(blobs[1].centroid_x, 10.5);
  EXPECT_DOUBLE_EQ(blobs[1].centroid_y, 4.0);
}

TEST(Blobs, CentroidOfLShape) {
  // L pentomino: pixels (2,2),(2,3),(2,4),(3,4),(4,4).
  ImageU8 mask(8, 8, 0);
  for (int y = 2; y <= 4; ++y) mask(2, y) = 255;
  for (int x = 3; x <= 4; ++x) mask(x, 4) = 255;
  const auto blobs = find_blobs(mask);
  ASSERT_EQ(blobs.size(), 1u);
  EXPECT_EQ(blobs[0].bbox, (Rect{2, 2, 3, 3}));
  EXPECT_EQ(blobs[0].area, 5);
  EXPECT_DOUBLE_EQ(blobs[0].centroid_x, (2 + 2 + 2 + 3 + 4) / 5.0);
  EXPECT_DOUBLE_EQ(blobs[0].centroid_y, (2 + 3 + 4 + 4 + 4) / 5.0);
  EXPECT_NEAR(blobs[0].extent(), 5.0 / 9.0, 1e-12);
}

// Property sweep: the sum of blob areas equals the number of set pixels for
// any min_area of 1, for several pseudo-random densities.
class BlobConservation : public ::testing::TestWithParam<int> {};

TEST_P(BlobConservation, AreasSumToSetPixels) {
  const int density = GetParam();
  ImageU8 mask(24, 24, 0);
  std::size_t set = 0;
  for (int y = 0; y < 24; ++y) {
    for (int x = 0; x < 24; ++x) {
      if ((x * 31 + y * 17 + x * y) % 100 < density) {
        mask(x, y) = 255;
        ++set;
      }
    }
  }
  const auto blobs = find_blobs(mask);
  long long total = 0;
  for (const Blob& b : blobs) total += b.area;
  EXPECT_EQ(static_cast<std::size_t>(total), set);
}

INSTANTIATE_TEST_SUITE_P(Densities, BlobConservation,
                         ::testing::Values(5, 20, 50, 80, 95));

}  // namespace
}  // namespace avd::img
