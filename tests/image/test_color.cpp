#include "avd/image/color.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

TEST(Color, GrayPixelsHaveNeutralChroma) {
  for (int v : {0, 64, 128, 200, 255}) {
    const auto u = static_cast<std::uint8_t>(v);
    EXPECT_EQ(luma_of(u, u, u), u) << v;
    EXPECT_NEAR(cb_of(u, u, u), 128, 1) << v;
    EXPECT_NEAR(cr_of(u, u, u), 128, 1) << v;
  }
}

TEST(Color, PureRedHasHighCr) {
  EXPECT_GT(cr_of(255, 0, 0), 200);
  EXPECT_LT(cb_of(255, 0, 0), 128);
}

TEST(Color, PureBlueHasHighCb) {
  EXPECT_GT(cb_of(0, 0, 255), 200);
  EXPECT_LT(cr_of(0, 0, 255), 128);
}

TEST(Color, LumaWeightsOrderedGreenDominant) {
  // BT.601: green contributes most to luma, blue least.
  EXPECT_GT(luma_of(0, 255, 0), luma_of(255, 0, 0));
  EXPECT_GT(luma_of(255, 0, 0), luma_of(0, 0, 255));
}

TEST(Color, TaillightRedSignature) {
  // The rendered taillight color must pass the dark-pipeline chroma gates.
  const std::uint8_t r = 255, g = 40, b = 28;
  EXPECT_GE(cr_of(r, g, b), 150);
  EXPECT_LE(cb_of(r, g, b), 135);
}

TEST(Color, HeadlightWhiteRejectedByChromaGates) {
  const std::uint8_t r = 255, g = 250, b = 235;
  EXPECT_LT(cr_of(r, g, b), 150);  // not red enough
}

TEST(Color, RgbYcbcrRoundTripCloses) {
  RgbImage rgb(16, 16);
  int i = 0;
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x, ++i)
      rgb.set_pixel(x, y,
                    {static_cast<std::uint8_t>((i * 37) % 256),
                     static_cast<std::uint8_t>((i * 101) % 256),
                     static_cast<std::uint8_t>((i * 53) % 256)});
  const RgbImage back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      const RgbPixel a = rgb.pixel(x, y);
      const RgbPixel c = back.pixel(x, y);
      EXPECT_NEAR(a.r, c.r, 2);
      EXPECT_NEAR(a.g, c.g, 2);
      EXPECT_NEAR(a.b, c.b, 2);
    }
  }
}

TEST(Color, RgbToGrayMatchesScalar) {
  RgbImage rgb(3, 1);
  rgb.set_pixel(0, 0, {255, 0, 0});
  rgb.set_pixel(1, 0, {0, 255, 0});
  rgb.set_pixel(2, 0, {12, 34, 56});
  const ImageU8 g = rgb_to_gray(rgb);
  EXPECT_EQ(g(0, 0), luma_of(255, 0, 0));
  EXPECT_EQ(g(1, 0), luma_of(0, 255, 0));
  EXPECT_EQ(g(2, 0), luma_of(12, 34, 56));
}

TEST(Color, GrayToRgbReplicates) {
  ImageU8 g(2, 2);
  g(0, 0) = 11;
  g(1, 1) = 99;
  const RgbImage rgb = gray_to_rgb(g);
  EXPECT_EQ(rgb.pixel(0, 0), (RgbPixel{11, 11, 11}));
  EXPECT_EQ(rgb.pixel(1, 1), (RgbPixel{99, 99, 99}));
}

TEST(Color, YcbcrImageGeometry) {
  const YcbcrImage ycc = rgb_to_ycbcr(RgbImage(9, 4));
  EXPECT_EQ(ycc.width(), 9);
  EXPECT_EQ(ycc.height(), 4);
  EXPECT_EQ(ycc.size(), (Size{9, 4}));
}

}  // namespace
}  // namespace avd::img
