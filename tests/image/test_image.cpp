#include "avd/image/image.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

TEST(Image, DefaultConstructedIsEmpty) {
  ImageU8 img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
  EXPECT_EQ(img.height(), 0);
  EXPECT_EQ(img.pixel_count(), 0u);
}

TEST(Image, ConstructWithFill) {
  ImageU8 img(4, 3, 7);
  EXPECT_EQ(img.size(), (Size{4, 3}));
  for (auto v : img.pixels()) EXPECT_EQ(v, 7);
}

TEST(Image, NegativeDimensionsThrow) {
  EXPECT_THROW(ImageU8(-1, 5), std::invalid_argument);
  EXPECT_THROW(ImageU8(5, -1), std::invalid_argument);
}

TEST(Image, RowMajorAddressing) {
  ImageU8 img(3, 2);
  img(0, 0) = 1;
  img(2, 0) = 2;
  img(0, 1) = 3;
  auto px = img.pixels();
  EXPECT_EQ(px[0], 1);
  EXPECT_EQ(px[2], 2);
  EXPECT_EQ(px[3], 3);
}

TEST(Image, AtThrowsOutOfRange) {
  ImageU8 img(3, 3);
  EXPECT_NO_THROW(img.at(2, 2));
  EXPECT_THROW(img.at(3, 0), std::out_of_range);
  EXPECT_THROW(img.at(0, 3), std::out_of_range);
  EXPECT_THROW(img.at(-1, 0), std::out_of_range);
}

TEST(Image, AtClampedBorderBehaviour) {
  ImageU8 img(2, 2);
  img(0, 0) = 10;
  img(1, 0) = 20;
  img(0, 1) = 30;
  img(1, 1) = 40;
  EXPECT_EQ(img.at_clamped(-5, -5), 10);
  EXPECT_EQ(img.at_clamped(9, 0), 20);
  EXPECT_EQ(img.at_clamped(0, 9), 30);
  EXPECT_EQ(img.at_clamped(9, 9), 40);
}

TEST(Image, RowSpan) {
  ImageU8 img(4, 2, 0);
  auto row = img.row(1);
  ASSERT_EQ(row.size(), 4u);
  row[2] = 99;
  EXPECT_EQ(img(2, 1), 99);
}

TEST(Image, FillOverwritesEverything) {
  ImageU8 img(5, 5, 1);
  img.fill(200);
  for (auto v : img.pixels()) EXPECT_EQ(v, 200);
}

TEST(Image, CropInterior) {
  ImageU8 img(10, 10);
  for (int y = 0; y < 10; ++y)
    for (int x = 0; x < 10; ++x) img(x, y) = static_cast<std::uint8_t>(10 * y + x);
  const ImageU8 c = img.crop({2, 3, 4, 5});
  EXPECT_EQ(c.size(), (Size{4, 5}));
  EXPECT_EQ(c(0, 0), 32);
  EXPECT_EQ(c(3, 4), 75);
}

TEST(Image, CropClipsToBounds) {
  ImageU8 img(5, 5, 9);
  const ImageU8 c = img.crop({3, 3, 10, 10});
  EXPECT_EQ(c.size(), (Size{2, 2}));
}

TEST(Image, CropFullyOutsideIsEmpty) {
  ImageU8 img(5, 5);
  EXPECT_TRUE(img.crop({10, 10, 3, 3}).empty());
}

TEST(Image, PasteClipsAtBorders) {
  ImageU8 dst(6, 6, 0);
  ImageU8 patch(3, 3, 255);
  dst.paste(patch, {4, 4});  // only 2x2 fits
  EXPECT_EQ(dst(4, 4), 255);
  EXPECT_EQ(dst(5, 5), 255);
  EXPECT_EQ(dst(3, 3), 0);
  dst.paste(patch, {-2, -2});  // only bottom-right 1x1 of patch lands at (0,0)
  EXPECT_EQ(dst(0, 0), 255);
  EXPECT_EQ(dst(1, 1), 0);
}

TEST(Image, EqualityComparesContent) {
  ImageU8 a(2, 2, 5);
  ImageU8 b(2, 2, 5);
  EXPECT_EQ(a, b);
  b(1, 1) = 6;
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == ImageU8(2, 3, 5));
}

TEST(ImageF32, FloatInstantiation) {
  ImageF32 img(3, 3, 1.5f);
  EXPECT_FLOAT_EQ(img(1, 1), 1.5f);
  img(1, 1) = -2.25f;
  EXPECT_FLOAT_EQ(img.at_clamped(1, 1), -2.25f);
}

TEST(RgbImage, PlanesShareGeometry) {
  RgbImage rgb(7, 5);
  EXPECT_EQ(rgb.size(), (Size{7, 5}));
  EXPECT_EQ(rgb.r().size(), rgb.b().size());
}

TEST(RgbImage, MismatchedPlanesThrow) {
  EXPECT_THROW(RgbImage(ImageU8(2, 2), ImageU8(2, 2), ImageU8(3, 2)),
               std::invalid_argument);
}

TEST(RgbImage, PixelRoundTrip) {
  RgbImage rgb(4, 4);
  rgb.set_pixel(2, 3, {10, 20, 30});
  EXPECT_EQ(rgb.pixel(2, 3), (RgbPixel{10, 20, 30}));
}

TEST(RgbImage, SetPixelClippedIgnoresOutside) {
  RgbImage rgb(2, 2);
  rgb.set_pixel_clipped(5, 5, {1, 2, 3});  // must not crash
  rgb.set_pixel_clipped(1, 1, {1, 2, 3});
  EXPECT_EQ(rgb.pixel(1, 1), (RgbPixel{1, 2, 3}));
}

TEST(RgbImage, FillAndCrop) {
  RgbImage rgb(6, 6);
  rgb.fill({9, 8, 7});
  const RgbImage c = rgb.crop({1, 1, 2, 2});
  EXPECT_EQ(c.size(), (Size{2, 2}));
  EXPECT_EQ(c.pixel(0, 0), (RgbPixel{9, 8, 7}));
}

}  // namespace
}  // namespace avd::img
