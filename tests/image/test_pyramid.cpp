#include "avd/image/pyramid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace avd::img {
namespace {

ImageU8 gradient(int w, int h) {
  ImageU8 im(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      im(x, y) = static_cast<std::uint8_t>((x + y) % 256);
  return im;
}

TEST(Pyramid, LevelZeroIsBase) {
  const ImageU8 base = gradient(128, 64);
  const Pyramid pyr(base);
  ASSERT_GE(pyr.levels(), 1u);
  EXPECT_EQ(pyr.level(0).image, base);
  EXPECT_DOUBLE_EQ(pyr.level(0).scale, 1.0);
}

TEST(Pyramid, ScalesFollowStep) {
  const Pyramid pyr(gradient(256, 256), {1.5, 4, {16, 16}});
  ASSERT_EQ(pyr.levels(), 4u);
  for (std::size_t i = 0; i < pyr.levels(); ++i)
    EXPECT_NEAR(pyr.level(i).scale, std::pow(1.5, static_cast<double>(i)),
                1e-12);
}

TEST(Pyramid, LevelDimensionsShrink) {
  const Pyramid pyr(gradient(200, 100), {1.25, 8, {16, 16}});
  for (std::size_t i = 1; i < pyr.levels(); ++i) {
    EXPECT_LT(pyr.level(i).image.width(), pyr.level(i - 1).image.width());
    EXPECT_LT(pyr.level(i).image.height(), pyr.level(i - 1).image.height());
  }
}

TEST(Pyramid, StopsAtMinSize) {
  const Pyramid pyr(gradient(64, 64), {2.0, 10, {20, 20}});
  for (const PyramidLevel& level : pyr) {
    EXPECT_GE(level.image.width(), 20);
    EXPECT_GE(level.image.height(), 20);
  }
  EXPECT_LT(pyr.levels(), 10u);  // terminated early
}

TEST(Pyramid, MaxLevelsRespected) {
  const Pyramid pyr(gradient(4096, 4096), {1.1, 3, {16, 16}});
  EXPECT_EQ(pyr.levels(), 3u);
}

TEST(Pyramid, ToBaseMapsCoordinates) {
  const Pyramid pyr(gradient(200, 200), {2.0, 3, {16, 16}});
  ASSERT_GE(pyr.levels(), 2u);
  const Rect level1_box{10, 20, 30, 40};
  const Rect base_box = pyr.to_base(1, level1_box);
  EXPECT_EQ(base_box, (Rect{20, 40, 60, 80}));
  EXPECT_EQ(pyr.to_base(0, level1_box), level1_box);
}

TEST(Pyramid, InvalidParamsThrow) {
  EXPECT_THROW(Pyramid(ImageU8(), {}), std::invalid_argument);
  EXPECT_THROW(Pyramid(gradient(8, 8), {1.0, 3, {4, 4}}),
               std::invalid_argument);
  EXPECT_THROW(Pyramid(gradient(8, 8), {1.5, 0, {4, 4}}),
               std::invalid_argument);
}

TEST(Pyramid, RangeForIteration) {
  const Pyramid pyr(gradient(64, 64), {1.5, 3, {8, 8}});
  std::size_t count = 0;
  for (const PyramidLevel& level : pyr) {
    EXPECT_FALSE(level.image.empty());
    ++count;
  }
  EXPECT_EQ(count, pyr.levels());
}

}  // namespace
}  // namespace avd::img
