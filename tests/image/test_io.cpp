#include "avd/image/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace avd::img {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "avd_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, PgmRoundTrip) {
  ImageU8 img(13, 7);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      img(x, y) = static_cast<std::uint8_t>((x * 19 + y * 7) % 256);
  write_pgm(img, path("a.pgm"));
  EXPECT_EQ(read_pgm(path("a.pgm")), img);
}

TEST_F(IoTest, PpmRoundTrip) {
  RgbImage rgb(5, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x)
      rgb.set_pixel(x, y,
                    {static_cast<std::uint8_t>(x * 40),
                     static_cast<std::uint8_t>(y * 60),
                     static_cast<std::uint8_t>(x + y)});
  write_ppm(rgb, path("b.ppm"));
  const RgbImage back = read_ppm(path("b.ppm"));
  ASSERT_EQ(back.size(), rgb.size());
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x) EXPECT_EQ(back.pixel(x, y), rgb.pixel(x, y));
}

TEST_F(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_pgm(path("nope.pgm")), std::runtime_error);
  EXPECT_THROW(read_ppm(path("nope.ppm")), std::runtime_error);
}

TEST_F(IoTest, ReadWrongMagicThrows) {
  std::ofstream(path("bad.pgm")) << "P6\n2 2\n255\nxxxx";
  EXPECT_THROW(read_pgm(path("bad.pgm")), std::runtime_error);
}

TEST_F(IoTest, ReadTruncatedPayloadThrows) {
  std::ofstream(path("trunc.pgm"), std::ios::binary) << "P5\n4 4\n255\nab";
  EXPECT_THROW(read_pgm(path("trunc.pgm")), std::runtime_error);
}

TEST_F(IoTest, ReadHonorsCommentLines) {
  ImageU8 img(2, 2);
  img(0, 0) = 1;
  img(1, 0) = 2;
  img(0, 1) = 3;
  img(1, 1) = 4;
  std::ofstream out(path("c.pgm"), std::ios::binary);
  out << "P5\n# a comment\n2 2\n# another\n255\n";
  out.write("\x01\x02\x03\x04", 4);
  out.close();
  EXPECT_EQ(read_pgm(path("c.pgm")), img);
}

TEST_F(IoTest, UnsupportedMaxvalThrows) {
  std::ofstream(path("d.pgm"), std::ios::binary) << "P5\n2 2\n65535\nabcdefgh";
  EXPECT_THROW(read_pgm(path("d.pgm")), std::runtime_error);
}

TEST_F(IoTest, WriteToUnwritablePathThrows) {
  EXPECT_THROW(write_pgm(ImageU8(2, 2), "/nonexistent-dir/x.pgm"),
               std::runtime_error);
}

}  // namespace
}  // namespace avd::img
