#include "avd/image/stats.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

TEST(Histogram, CountsAllPixels) {
  ImageU8 img(4, 4, 10);
  img(0, 0) = 250;
  const auto h = histogram(img);
  EXPECT_EQ(h[10], 15u);
  EXPECT_EQ(h[250], 1u);
  std::uint64_t total = 0;
  for (auto v : h) total += v;
  EXPECT_EQ(total, 16u);
}

TEST(MeanIntensity, ConstantAndMixed) {
  EXPECT_DOUBLE_EQ(mean_intensity(ImageU8(3, 3, 80)), 80.0);
  ImageU8 img(2, 1);
  img(0, 0) = 0;
  img(1, 0) = 100;
  EXPECT_DOUBLE_EQ(mean_intensity(img), 50.0);
  EXPECT_DOUBLE_EQ(mean_intensity(ImageU8()), 0.0);
}

TEST(StddevIntensity, ZeroForConstant) {
  EXPECT_DOUBLE_EQ(stddev_intensity(ImageU8(4, 4, 42)), 0.0);
}

TEST(StddevIntensity, KnownValue) {
  ImageU8 img(2, 1);
  img(0, 0) = 0;
  img(1, 0) = 10;
  EXPECT_DOUBLE_EQ(stddev_intensity(img), 5.0);
}

TEST(Percentile, MedianOfUniformRamp) {
  ImageU8 img(256, 1);
  for (int x = 0; x < 256; ++x) img(x, 0) = static_cast<std::uint8_t>(x);
  EXPECT_NEAR(percentile(img, 0.5), 127, 1);
  EXPECT_EQ(percentile(img, 0.0), 0);
  EXPECT_EQ(percentile(img, 1.0), 255);
}

TEST(Percentile, FractionClamped) {
  ImageU8 img(4, 4, 99);
  EXPECT_EQ(percentile(img, -0.5), 99);
  EXPECT_EQ(percentile(img, 2.0), 99);
}

TEST(BrightFraction, Thresholded) {
  ImageU8 img(10, 1, 0);
  for (int x = 0; x < 3; ++x) img(x, 0) = 240;
  EXPECT_DOUBLE_EQ(bright_fraction(img, 240), 0.3);
  EXPECT_DOUBLE_EQ(bright_fraction(img, 241), 0.0);
  EXPECT_DOUBLE_EQ(bright_fraction(img, 0), 1.0);
}

class IntegralImageTest : public ::testing::Test {
 protected:
  ImageU8 ramp() const {
    ImageU8 img(6, 5);
    for (int y = 0; y < 5; ++y)
      for (int x = 0; x < 6; ++x) img(x, y) = static_cast<std::uint8_t>(y * 6 + x);
    return img;
  }
};

TEST_F(IntegralImageTest, FullSumMatchesBruteForce) {
  const ImageU8 img = ramp();
  const IntegralImage ii(img);
  std::uint64_t brute = 0;
  for (auto v : img.pixels()) brute += v;
  EXPECT_EQ(ii.box_sum(img.bounds()), brute);
}

TEST_F(IntegralImageTest, InteriorBoxMatchesBruteForce) {
  const ImageU8 img = ramp();
  const IntegralImage ii(img);
  const Rect r{2, 1, 3, 3};
  std::uint64_t brute = 0;
  for (int y = r.y; y < r.bottom(); ++y)
    for (int x = r.x; x < r.right(); ++x) brute += img(x, y);
  EXPECT_EQ(ii.box_sum(r), brute);
  EXPECT_DOUBLE_EQ(ii.box_mean(r), static_cast<double>(brute) / 9.0);
}

TEST_F(IntegralImageTest, OutOfBoundsClipped) {
  const IntegralImage ii(ramp());
  EXPECT_EQ(ii.box_sum({-5, -5, 100, 100}), ii.box_sum({0, 0, 6, 5}));
  EXPECT_EQ(ii.box_sum({10, 10, 2, 2}), 0u);
  EXPECT_DOUBLE_EQ(ii.box_mean({10, 10, 2, 2}), 0.0);
}

TEST_F(IntegralImageTest, SinglePixelBox) {
  const ImageU8 img = ramp();
  const IntegralImage ii(img);
  EXPECT_EQ(ii.box_sum({3, 2, 1, 1}), img(3, 2));
}

// Property sweep: random boxes on a deterministic pseudo-noise image agree
// with brute force.
class IntegralProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntegralProperty, RandomBoxAgreesWithBruteForce) {
  const int seed = GetParam();
  ImageU8 img(17, 13);
  for (int y = 0; y < 13; ++y)
    for (int x = 0; x < 17; ++x)
      img(x, y) = static_cast<std::uint8_t>((x * 131 + y * 37 + seed * 97) % 256);
  const IntegralImage ii(img);
  const Rect r{seed % 9, (seed * 3) % 7, 3 + seed % 8, 2 + seed % 6};
  std::uint64_t brute = 0;
  const Rect c = intersect(r, img.bounds());
  for (int y = c.y; y < c.bottom(); ++y)
    for (int x = c.x; x < c.right(); ++x) brute += img(x, y);
  EXPECT_EQ(ii.box_sum(r), brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntegralProperty,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace avd::img
