#include "avd/image/threshold.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

TEST(ThresholdBinary, SplitsAtThreshold) {
  ImageU8 src(4, 1);
  src(0, 0) = 0;
  src(1, 0) = 99;
  src(2, 0) = 100;
  src(3, 0) = 255;
  const ImageU8 out = threshold_binary(src, 100);
  EXPECT_EQ(out(0, 0), 0);
  EXPECT_EQ(out(1, 0), 0);
  EXPECT_EQ(out(2, 0), 255);  // >= is inclusive
  EXPECT_EQ(out(3, 0), 255);
}

TEST(ThresholdBinary, ZeroThresholdSelectsAll) {
  const ImageU8 out = threshold_binary(ImageU8(3, 3, 0), 0);
  EXPECT_EQ(count_nonzero(out), 9u);
}

TEST(ThresholdBand, InclusiveBothEnds) {
  ImageU8 src(5, 1);
  for (int x = 0; x < 5; ++x) src(x, 0) = static_cast<std::uint8_t>(x * 50);
  const ImageU8 out = threshold_band(src, 50, 150);
  EXPECT_EQ(out(0, 0), 0);
  EXPECT_EQ(out(1, 0), 255);
  EXPECT_EQ(out(2, 0), 255);
  EXPECT_EQ(out(3, 0), 255);
  EXPECT_EQ(out(4, 0), 0);
}

TEST(ThresholdBand, InvalidRangeThrows) {
  EXPECT_THROW(threshold_band(ImageU8(2, 2), 100, 50), std::invalid_argument);
}

TEST(MaskLogic, AndOrNotTruthTable) {
  ImageU8 a(2, 1), b(2, 1);
  a(0, 0) = 255;
  a(1, 0) = 0;
  b(0, 0) = 255;
  b(1, 0) = 255;
  EXPECT_EQ(mask_and(a, b)(0, 0), 255);
  EXPECT_EQ(mask_and(a, b)(1, 0), 0);
  EXPECT_EQ(mask_or(a, b)(1, 0), 255);
  EXPECT_EQ(mask_not(a)(0, 0), 0);
  EXPECT_EQ(mask_not(a)(1, 0), 255);
}

TEST(MaskLogic, TreatsAnyNonzeroAsSet) {
  ImageU8 a(1, 1, 1);  // non-255 but set
  ImageU8 b(1, 1, 7);
  EXPECT_EQ(mask_and(a, b)(0, 0), 255);
}

TEST(MaskLogic, SizeMismatchThrows) {
  EXPECT_THROW(mask_and(ImageU8(2, 2), ImageU8(3, 2)), std::invalid_argument);
  EXPECT_THROW(mask_or(ImageU8(2, 2), ImageU8(2, 3)), std::invalid_argument);
}

TEST(MaskLogic, DeMorgan) {
  // not(a and b) == not(a) or not(b) for arbitrary masks.
  ImageU8 a(4, 4, 0), b(4, 4, 0);
  a(1, 1) = 255;
  a(2, 2) = 255;
  b(2, 2) = 255;
  b(3, 3) = 255;
  EXPECT_EQ(mask_not(mask_and(a, b)), mask_or(mask_not(a), mask_not(b)));
}

TEST(CountNonzero, Counts) {
  ImageU8 m(3, 3, 0);
  m(0, 0) = 255;
  m(2, 2) = 1;
  EXPECT_EQ(count_nonzero(m), 2u);
}

class TaillightMaskTest : public ::testing::Test {
 protected:
  static YcbcrImage scene_with(std::uint8_t r, std::uint8_t g, std::uint8_t b) {
    RgbImage rgb(8, 8);
    rgb.fill({10, 10, 12});  // near-black night background
    fill_rect_center(rgb, {r, g, b});
    return rgb_to_ycbcr(rgb);
  }
  static void fill_rect_center(RgbImage& rgb, RgbPixel p) {
    for (int y = 3; y < 5; ++y)
      for (int x = 3; x < 5; ++x) rgb.set_pixel(x, y, p);
  }
};

TEST_F(TaillightMaskTest, AcceptsLitTaillight) {
  const ImageU8 mask = taillight_roi_mask(scene_with(255, 40, 28));
  EXPECT_EQ(count_nonzero(mask), 4u);
  EXPECT_EQ(mask(3, 3), 255);
}

TEST_F(TaillightMaskTest, RejectsWhiteHeadlight) {
  EXPECT_EQ(count_nonzero(taillight_roi_mask(scene_with(255, 250, 235))), 0u);
}

TEST_F(TaillightMaskTest, RejectsDimRedReflection) {
  // Red hue but below the luminance gate.
  EXPECT_EQ(count_nonzero(taillight_roi_mask(scene_with(60, 8, 6))), 0u);
}

TEST_F(TaillightMaskTest, RejectsDarkBackground) {
  RgbImage rgb(8, 8);
  rgb.fill({10, 10, 12});
  EXPECT_EQ(count_nonzero(taillight_roi_mask(rgb_to_ycbcr(rgb))), 0u);
}

TEST_F(TaillightMaskTest, CustomParamsChangeDecision) {
  TaillightThresholdParams strict;
  strict.cr_min = 245;  // stricter than the rendered lamp's Cr
  EXPECT_EQ(count_nonzero(taillight_roi_mask(scene_with(255, 40, 28), strict)),
            0u);
}

}  // namespace
}  // namespace avd::img
