#include "avd/image/geometry.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

TEST(Rect, AccessorsAndArea) {
  const Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.left(), 10);
  EXPECT_EQ(r.top(), 20);
  EXPECT_EQ(r.right(), 40);
  EXPECT_EQ(r.bottom(), 60);
  EXPECT_EQ(r.area(), 1200);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.center(), (Point{25, 40}));
}

TEST(Rect, EmptyVariants) {
  EXPECT_TRUE((Rect{0, 0, 0, 10}).empty());
  EXPECT_TRUE((Rect{0, 0, 10, 0}).empty());
  EXPECT_TRUE((Rect{5, 5, -3, 10}).empty());
  EXPECT_FALSE((Rect{0, 0, 1, 1}).empty());
}

TEST(Rect, ContainsPoint) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 9}));  // right edge exclusive
  EXPECT_FALSE(r.contains(Point{9, 10}));
  EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(Rect, ContainsRect) {
  const Rect outer{0, 0, 10, 10};
  EXPECT_TRUE(outer.contains(Rect{2, 2, 5, 5}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{5, 5, 10, 5}));
}

TEST(Intersect, OverlappingRects) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  EXPECT_EQ(intersect(a, b), (Rect{5, 5, 5, 5}));
  EXPECT_EQ(intersect(b, a), (Rect{5, 5, 5, 5}));  // commutative
}

TEST(Intersect, DisjointRectsAreEmpty) {
  const Rect a{0, 0, 5, 5};
  const Rect b{10, 10, 5, 5};
  EXPECT_TRUE(intersect(a, b).empty());
}

TEST(Intersect, TouchingEdgesAreEmpty) {
  const Rect a{0, 0, 5, 5};
  const Rect b{5, 0, 5, 5};
  EXPECT_TRUE(intersect(a, b).empty());
}

TEST(BoundingUnion, CoversBoth) {
  const Rect a{0, 0, 5, 5};
  const Rect b{10, 10, 5, 5};
  const Rect u = bounding_union(a, b);
  EXPECT_TRUE(u.contains(a));
  EXPECT_TRUE(u.contains(b));
  EXPECT_EQ(u, (Rect{0, 0, 15, 15}));
}

TEST(BoundingUnion, EmptyOperandIsIdentity) {
  const Rect a{3, 4, 5, 6};
  EXPECT_EQ(bounding_union(a, Rect{}), a);
  EXPECT_EQ(bounding_union(Rect{}, a), a);
}

TEST(Iou, IdenticalRectsAreOne) {
  const Rect a{2, 3, 7, 9};
  EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
}

TEST(Iou, DisjointRectsAreZero) {
  EXPECT_DOUBLE_EQ(iou(Rect{0, 0, 5, 5}, Rect{20, 20, 5, 5}), 0.0);
}

TEST(Iou, HalfOverlap) {
  // a is 10x10, b is 10x10 shifted so intersection is 5x10 = 50,
  // union = 100 + 100 - 50 = 150.
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 0, 10, 10};
  EXPECT_NEAR(iou(a, b), 50.0 / 150.0, 1e-12);
}

TEST(Iou, EmptyRectIsZero) {
  EXPECT_DOUBLE_EQ(iou(Rect{}, Rect{0, 0, 5, 5}), 0.0);
}

TEST(Scaled, ScalesCoordinatesAndSize) {
  const Rect r{10, 20, 30, 40};
  EXPECT_EQ(scaled(r, 2.0, 0.5), (Rect{20, 10, 60, 20}));
}

TEST(Inflated, GrowsAllSides) {
  EXPECT_EQ(inflated(Rect{10, 10, 10, 10}, 2), (Rect{8, 8, 14, 14}));
}

TEST(Inflated, NegativeMarginShrinks) {
  EXPECT_EQ(inflated(Rect{10, 10, 10, 10}, -3), (Rect{13, 13, 4, 4}));
}

TEST(Clip, ClipsToBounds) {
  const Rect bounds{0, 0, 100, 100};
  EXPECT_EQ(clip(Rect{-10, -10, 30, 30}, bounds), (Rect{0, 0, 20, 20}));
  EXPECT_EQ(clip(Rect{90, 90, 30, 30}, bounds), (Rect{90, 90, 10, 10}));
}

TEST(Size, AreaAndEmpty) {
  EXPECT_EQ((Size{1920, 1080}).area(), 2073600);
  EXPECT_TRUE((Size{0, 5}).empty());
  EXPECT_FALSE((Size{1, 1}).empty());
}

// Property sweep: IoU is symmetric and bounded for a grid of offsets.
class IouProperty : public ::testing::TestWithParam<int> {};

TEST_P(IouProperty, SymmetricAndBounded) {
  const int offset = GetParam();
  const Rect a{0, 0, 10, 10};
  const Rect b{offset, offset / 2, 8, 12};
  const double ab = iou(a, b);
  const double ba = iou(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Offsets, IouProperty,
                         ::testing::Values(-15, -5, 0, 3, 9, 10, 25));

}  // namespace
}  // namespace avd::img
