#include "avd/image/draw.hpp"

#include <gtest/gtest.h>

namespace avd::img {
namespace {

std::size_t count_set(const ImageU8& img) {
  std::size_t n = 0;
  for (auto v : img.pixels()) n += v != 0;
  return n;
}

TEST(FillRect, FillsExactRegion) {
  ImageU8 img(8, 8, 0);
  fill_rect(img, {2, 3, 3, 2}, 200);
  std::size_t set = 0;
  for (auto v : img.pixels()) set += v == 200;
  EXPECT_EQ(set, 6u);
  EXPECT_EQ(img(2, 3), 200);
  EXPECT_EQ(img(4, 4), 200);
  EXPECT_EQ(img(5, 4), 0);
}

TEST(FillRect, ClipsOutOfBounds) {
  ImageU8 img(4, 4, 0);
  fill_rect(img, {-2, -2, 4, 4}, 9);  // only 2x2 lands
  EXPECT_EQ(img(0, 0), 9);
  EXPECT_EQ(img(1, 1), 9);
  EXPECT_EQ(img(2, 2), 0);
  fill_rect(img, {10, 10, 5, 5}, 9);  // fully outside: no crash
}

TEST(FillRect, RgbVariantFillsPlanes) {
  RgbImage img(4, 4);
  fill_rect(img, {1, 1, 2, 2}, {10, 20, 30});
  EXPECT_EQ(img.pixel(2, 2), (RgbPixel{10, 20, 30}));
  EXPECT_EQ(img.pixel(0, 0), (RgbPixel{0, 0, 0}));
}

TEST(DrawRect, OutlineOnly) {
  ImageU8 img(8, 8, 0);
  draw_rect(img, {1, 1, 6, 6}, 255, 1);
  EXPECT_EQ(img(1, 1), 255);   // corner
  EXPECT_EQ(img(4, 1), 255);   // top edge
  EXPECT_EQ(img(1, 4), 255);   // left edge
  EXPECT_EQ(img(6, 6), 255);   // opposite corner
  EXPECT_EQ(img(3, 3), 0);     // interior untouched
}

TEST(DrawRect, ThicknessGrowsInward) {
  ImageU8 img(10, 10, 0);
  draw_rect(img, {1, 1, 8, 8}, 255, 2);
  EXPECT_EQ(img(2, 2), 255);
  EXPECT_EQ(img(3, 3), 0);
}

TEST(DrawRect, DegenerateInputsAreSafe) {
  ImageU8 img(4, 4, 0);
  draw_rect(img, {}, 255, 1);
  draw_rect(img, {0, 0, 4, 4}, 255, 0);
  EXPECT_EQ(count_set(img), 0u);
}

TEST(DrawLine, HorizontalVerticalDiagonal) {
  RgbImage img(8, 8);
  draw_line(img, {0, 0}, {7, 0}, {255, 0, 0});
  draw_line(img, {0, 1}, {0, 7}, {0, 255, 0});
  draw_line(img, {1, 1}, {7, 7}, {0, 0, 255});
  EXPECT_EQ(img.pixel(4, 0).r, 255);
  EXPECT_EQ(img.pixel(0, 5).g, 255);
  EXPECT_EQ(img.pixel(5, 5).b, 255);
}

TEST(DrawLine, EndpointsInclusive) {
  RgbImage img(5, 5);
  draw_line(img, {1, 2}, {3, 2}, {9, 9, 9});
  EXPECT_EQ(img.pixel(1, 2).r, 9);
  EXPECT_EQ(img.pixel(3, 2).r, 9);
}

TEST(DrawLine, OffscreenSegmentsClipped) {
  RgbImage img(4, 4);
  draw_line(img, {-3, -3}, {7, 7}, {5, 5, 5});  // must not crash
  EXPECT_EQ(img.pixel(2, 2).r, 5);
}

TEST(FillEllipse, InscribedInRect) {
  ImageU8 img(11, 11, 0);
  fill_ellipse(img, {2, 2, 7, 7}, 255);
  EXPECT_EQ(img(5, 5), 255);  // centre
  EXPECT_EQ(img(2, 2), 0);    // rect corner outside the ellipse
  EXPECT_GT(count_set(img), 20u);
}

TEST(FillEllipse, SinglePixel) {
  ImageU8 img(5, 5, 0);
  fill_ellipse(img, {2, 2, 1, 1}, 255);
  EXPECT_EQ(img(2, 2), 255);
  EXPECT_EQ(count_set(img), 1u);
}

TEST(AddGlow, BrightensCenterMost) {
  RgbImage img(21, 21);
  add_glow(img, {10, 10}, 8, {200, 100, 50});
  EXPECT_GT(img.pixel(10, 10).r, img.pixel(14, 10).r);
  EXPECT_EQ(img.pixel(20, 20).r, 0);  // outside radius
}

TEST(AddGlow, SaturatesInsteadOfWrapping) {
  RgbImage img(9, 9);
  img.fill({250, 250, 250});
  add_glow(img, {4, 4}, 4, {200, 200, 200});
  EXPECT_EQ(img.pixel(4, 4).r, 255);
}

TEST(AddGlow, ZeroRadiusIsNoop) {
  RgbImage img(5, 5);
  add_glow(img, {2, 2}, 0, {255, 255, 255});
  EXPECT_EQ(img.pixel(2, 2).r, 0);
}

TEST(BlendRect, AlphaMixes) {
  RgbImage img(4, 4);
  img.fill({100, 100, 100});
  blend_rect(img, {0, 0, 4, 4}, {200, 0, 0}, 0.5f);
  EXPECT_EQ(img.pixel(1, 1).r, 150);
  EXPECT_EQ(img.pixel(1, 1).g, 50);
}

TEST(DrawNumber, SingleDigitShape) {
  RgbImage img(16, 16);
  const int width = draw_number(img, {2, 2}, 1, {255, 255, 255}, 1);
  EXPECT_EQ(width, 4);  // 3-wide glyph + spacing
  // '1' has a lit pixel at the glyph centre column.
  EXPECT_EQ(img.pixel(3, 4).r, 255);
  // '1' column 0, row 0 is dark.
  EXPECT_EQ(img.pixel(2, 2).r, 0);
}

TEST(DrawNumber, MultiDigitWidth) {
  RgbImage img(64, 16);
  EXPECT_EQ(draw_number(img, {0, 0}, 123, {255, 0, 0}, 1), 12);
  EXPECT_EQ(draw_number(img, {0, 8}, 7, {255, 0, 0}, 2), 8);
}

TEST(DrawNumber, ZeroRendered) {
  RgbImage img(8, 8);
  EXPECT_EQ(draw_number(img, {0, 0}, 0, {9, 9, 9}, 1), 4);
  // '0' outline: corners lit, centre dark.
  EXPECT_EQ(img.pixel(0, 0).r, 9);
  EXPECT_EQ(img.pixel(1, 2).r, 0);
}

TEST(DrawNumber, ScaleGrowsGlyphs) {
  RgbImage img(32, 32);
  draw_number(img, {0, 0}, 8, {255, 255, 255}, 3);
  // At scale 3, the top-left font pixel covers a 3x3 block.
  EXPECT_EQ(img.pixel(0, 0).r, 255);
  EXPECT_EQ(img.pixel(2, 2).r, 255);
}

TEST(DrawNumber, ClipsAtBorders) {
  RgbImage img(4, 4);
  EXPECT_NO_THROW(draw_number(img, {-2, -2}, 888, {255, 255, 255}, 2));
  EXPECT_EQ(draw_number(img, {0, 0}, 5, {1, 1, 1}, 0), 0);  // bad scale
}

TEST(BlendRect, AlphaClamped) {
  RgbImage img(2, 2);
  img.fill({100, 100, 100});
  blend_rect(img, {0, 0, 2, 2}, {200, 200, 200}, 4.0f);  // clamps to 1
  EXPECT_EQ(img.pixel(0, 0).r, 200);
}

}  // namespace
}  // namespace avd::img
