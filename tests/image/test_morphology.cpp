#include "avd/image/morphology.hpp"

#include <gtest/gtest.h>

#include "avd/image/threshold.hpp"

namespace avd::img {
namespace {

ImageU8 single_pixel(int w, int h, int x, int y) {
  ImageU8 img(w, h, 0);
  img(x, y) = 255;
  return img;
}

TEST(Dilate, GrowsSinglePixelToSeShape) {
  const ImageU8 out = dilate(single_pixel(7, 7, 3, 3), {3, 3});
  EXPECT_EQ(count_nonzero(out), 9u);
  for (int dy = -1; dy <= 1; ++dy)
    for (int dx = -1; dx <= 1; ++dx) EXPECT_EQ(out(3 + dx, 3 + dy), 255);
}

TEST(Dilate, RectangularSe) {
  const ImageU8 out = dilate(single_pixel(9, 9, 4, 4), {5, 1});
  EXPECT_EQ(count_nonzero(out), 5u);
  EXPECT_EQ(out(2, 4), 255);
  EXPECT_EQ(out(6, 4), 255);
  EXPECT_EQ(out(4, 3), 0);
}

TEST(Dilate, ClipsAtBorder) {
  const ImageU8 out = dilate(single_pixel(5, 5, 0, 0), {3, 3});
  EXPECT_EQ(count_nonzero(out), 4u);  // only the in-bounds quadrant
}

TEST(Erode, RemovesSinglePixel) {
  const ImageU8 out = erode(single_pixel(7, 7, 3, 3), {3, 3});
  EXPECT_EQ(count_nonzero(out), 0u);
}

TEST(Erode, ShrinksSolidBlock) {
  ImageU8 img(7, 7, 0);
  for (int y = 1; y <= 5; ++y)
    for (int x = 1; x <= 5; ++x) img(x, y) = 255;
  const ImageU8 out = erode(img, {3, 3});
  EXPECT_EQ(count_nonzero(out), 9u);  // 5x5 erodes to 3x3
  EXPECT_EQ(out(3, 3), 255);
  EXPECT_EQ(out(1, 1), 0);
}

TEST(Erode, BorderTreatedAsBackground) {
  // A full-frame mask erodes away from the borders.
  const ImageU8 out = erode(ImageU8(5, 5, 255), {3, 3});
  EXPECT_EQ(count_nonzero(out), 9u);  // interior 3x3 survives
  EXPECT_EQ(out(0, 0), 0);
}

TEST(Close, FillsSmallHole) {
  ImageU8 img(9, 9, 0);
  for (int y = 2; y <= 6; ++y)
    for (int x = 2; x <= 6; ++x) img(x, y) = 255;
  img(4, 4) = 0;  // one-pixel hole
  const ImageU8 out = close(img, {3, 3});
  EXPECT_EQ(out(4, 4), 255);
  // Closing must not shrink the blob.
  for (int y = 2; y <= 6; ++y)
    for (int x = 2; x <= 6; ++x) EXPECT_EQ(out(x, y), 255);
}

TEST(Close, BridgesNarrowGap) {
  // Two blobs one pixel apart merge under a 3x3 closing — the paper's
  // contour-smoothing rationale.
  ImageU8 img(11, 5, 0);
  for (int x = 1; x <= 4; ++x) img(x, 2) = 255;
  for (int x = 6; x <= 9; ++x) img(x, 2) = 255;
  const ImageU8 out = close(img, {3, 3});
  EXPECT_EQ(out(5, 2), 255);
}

TEST(Open, RemovesSpeckKeepsBlob) {
  ImageU8 img(11, 11, 0);
  img(1, 1) = 255;  // speck
  for (int y = 4; y <= 8; ++y)
    for (int x = 4; x <= 8; ++x) img(x, y) = 255;
  const ImageU8 out = open(img, {3, 3});
  EXPECT_EQ(out(1, 1), 0);
  EXPECT_EQ(out(6, 6), 255);
}

TEST(Morphology, EvenSeThrows) {
  EXPECT_THROW(dilate(ImageU8(3, 3), {2, 3}), std::invalid_argument);
  EXPECT_THROW(erode(ImageU8(3, 3), {3, 4}), std::invalid_argument);
  EXPECT_THROW(dilate(ImageU8(3, 3), {0, 1}), std::invalid_argument);
}

TEST(Morphology, DilateErodeDuality) {
  // dilate(m) == not(erode(not(m))) away from borders; we check on a pattern
  // kept clear of the border so the background-extension convention agrees.
  ImageU8 img(15, 15, 0);
  img(7, 7) = 255;
  img(8, 7) = 255;
  img(5, 9) = 255;
  const ImageU8 lhs = dilate(img, {3, 3});
  const ImageU8 rhs = mask_not(erode(mask_not(img), {3, 3}));
  for (int y = 2; y < 13; ++y)
    for (int x = 2; x < 13; ++x) EXPECT_EQ(lhs(x, y), rhs(x, y)) << x << ',' << y;
}

// Property: dilation is extensive, erosion anti-extensive, both idempotent
// when composed as opening/closing.
class MorphologyProperty : public ::testing::TestWithParam<int> {
 protected:
  ImageU8 pattern() const {
    ImageU8 img(16, 16, 0);
    const int seed = GetParam();
    for (int i = 0; i < 40; ++i) {
      const int x = (i * 7 + seed * 3) % 16;
      const int y = (i * 11 + seed * 5) % 16;
      img(x, y) = 255;
    }
    return img;
  }
};

TEST_P(MorphologyProperty, DilationIsExtensive) {
  const ImageU8 src = pattern();
  const ImageU8 out = dilate(src, {3, 3});
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      if (src(x, y)) EXPECT_EQ(out(x, y), 255);
}

TEST_P(MorphologyProperty, ErosionIsAntiExtensive) {
  const ImageU8 src = pattern();
  const ImageU8 out = erode(src, {3, 3});
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      if (!src(x, y)) EXPECT_EQ(out(x, y), 0);
}

TEST_P(MorphologyProperty, ClosingIsIdempotent) {
  const ImageU8 once = close(pattern(), {3, 3});
  EXPECT_EQ(close(once, {3, 3}), once);
}

TEST_P(MorphologyProperty, OpeningIsIdempotent) {
  const ImageU8 once = open(pattern(), {3, 3});
  EXPECT_EQ(open(once, {3, 3}), once);
}

INSTANTIATE_TEST_SUITE_P(Patterns, MorphologyProperty,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace avd::img
