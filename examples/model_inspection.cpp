// Model inspection toolbox: what does a trained day-model actually look at?
//
//  1. HOG glyph rendering of a vehicle patch vs a background patch
//     (the classic debugging view).
//  2. Platt calibration of the day and dusk SVMs on held-out data, showing
//     why raw margins are not comparable across models and calibrated
//     probabilities are.
//  3. A Chrome-trace export of an adaptive run's event log
//     (open in chrome://tracing or Perfetto).
//
//   ./model_inspection <output-dir>
#include <cstdio>
#include <string>
#include <vector>

#include "avd/core/adaptive_system.hpp"
#include "avd/hog/visualization.hpp"
#include "avd/image/io.hpp"
#include "avd/ml/calibration.hpp"
#include "avd/soc/trace_export.hpp"

namespace {

avd::ml::SvmProblem to_problem(const avd::data::PatchDataset& ds,
                               const avd::hog::HogParams& hog) {
  avd::ml::SvmProblem p;
  for (const auto& patch : ds.patches)
    p.add(avd::hog::compute_descriptor(patch.gray, hog), patch.label);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace avd;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];

  // --- 1. HOG glyphs ---
  ml::Rng rng(42);
  const img::ImageU8 vehicle =
      data::render_vehicle_patch(data::LightingCondition::Day, {64, 64}, rng);
  const img::ImageU8 background =
      data::render_negative_patch(data::LightingCondition::Day, {64, 64}, rng);
  img::write_pgm(vehicle, dir + "/inspect_vehicle.pgm");
  img::write_pgm(hog::visualize_hog(vehicle), dir + "/inspect_vehicle_hog.pgm");
  img::write_pgm(background, dir + "/inspect_background.pgm");
  img::write_pgm(hog::visualize_hog(background),
                 dir + "/inspect_background_hog.pgm");
  std::printf("wrote HOG glyph renderings to %s/inspect_*.pgm\n", dir.c_str());

  // --- 2. Calibration across models ---
  std::printf("\ntraining day and dusk models + calibrating...\n");
  data::VehiclePatchSpec day_tr{data::LightingCondition::Day, {64, 64}, 120,
                                120, 0.0, 1};
  data::VehiclePatchSpec dusk_tr{data::LightingCondition::Dusk, {64, 64}, 120,
                                 120, 0.0, 2};
  const auto m_day =
      det::train_hog_svm(data::make_vehicle_patches(day_tr), "day");
  const auto m_dusk =
      det::train_hog_svm(data::make_vehicle_patches(dusk_tr), "dusk");

  data::VehiclePatchSpec day_ho = day_tr;
  day_ho.seed = 77;
  data::VehiclePatchSpec dusk_ho = dusk_tr;
  dusk_ho.seed = 78;
  const auto day_holdout = data::make_vehicle_patches(day_ho);
  const auto dusk_holdout = data::make_vehicle_patches(dusk_ho);

  const ml::PlattScaler day_cal =
      ml::calibrate_svm(m_day.svm, to_problem(day_holdout, m_day.hog));
  const ml::PlattScaler dusk_cal =
      ml::calibrate_svm(m_dusk.svm, to_problem(dusk_holdout, m_dusk.hog));

  std::printf("raw decision 0.7 means:\n");
  std::printf("  day model : P(vehicle) = %.2f\n", day_cal.probability(0.7));
  std::printf("  dusk model: P(vehicle) = %.2f\n", dusk_cal.probability(0.7));
  std::printf("(different models, different scales — hence calibration "
              "before any cross-model fusion)\n");

  // --- 3. Chrome trace of an adaptive run ---
  core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 40;
  budget.pedestrian_pos = budget.pedestrian_neg = 30;
  budget.dbn_windows_per_class = 60;
  budget.pairing_scenes = 30;
  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(core::build_system_models(budget), cfg);
  const auto report = system.run(data::DriveSequence(
      data::DriveSequence::canonical_drive({480, 270}, 50)));
  const std::string trace_path = dir + "/adaptive_run_trace.json";
  soc::write_chrome_trace(report.log, trace_path);
  std::printf("\nwrote %s (%zu events; open in chrome://tracing)\n",
              trace_path.c_str(), report.log.size());
  return 0;
}
