// The paper's headline scenario end-to-end: a drive that passes from day
// through a lit tunnel, back into daylight, into the evening and finally
// full night. The adaptive system watches the light sensor, swaps the SVM
// model between day and dusk (a block-RAM update, free) and partially
// reconfigures the vehicle-detection partition when night falls — while the
// pedestrian detector in the static partition never misses a frame.
//
//   ./adaptive_drive [frames-per-segment] [--detect]
//
// --detect additionally runs the pixel-level detectors on every processed
// frame (slower; detection quality is then reported too).
#include <cstdio>
#include <cstring>
#include <string>

#include "avd/core/adaptive_system.hpp"

int main(int argc, char** argv) {
  using namespace avd;

  int frames_per_segment = 100;
  bool detect = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--detect") == 0)
      detect = true;
    else
      frames_per_segment = std::max(5, std::atoi(argv[i]));
  }

  std::printf("training models...\n");
  core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 80;
  budget.pedestrian_pos = budget.pedestrian_neg = 50;
  budget.dbn_windows_per_class = 100;
  budget.pairing_scenes = 50;

  core::AdaptiveSystemConfig config;
  config.run_detectors = detect;
  core::AdaptiveSystem system(core::build_system_models(budget), config);

  const data::DriveSequence drive(
      data::DriveSequence::canonical_drive({480, 270}, frames_per_segment));
  std::printf("driving %d frames (%.1f s at 50 fps)%s...\n",
              drive.frame_count(), drive.frame_count() / 50.0,
              detect ? " with pixel-level detection" : "");

  const core::AdaptiveRunReport report = system.run(drive);

  // Timeline: condition changes, reconfigurations, dropped frames.
  std::printf("\ntimeline:\n");
  std::string last_config;
  data::LightingCondition last_condition = data::LightingCondition::Day;
  for (const core::AdaptiveFrameReport& f : report.frames) {
    if (f.index == 0 || f.sensed != last_condition)
      std::printf("  frame %4d: sensed condition -> %s\n", f.index,
                  data::to_string(f.sensed).c_str());
    if (f.reconfig_triggered)
      std::printf("  frame %4d: PR triggered\n", f.index);
    if (!f.vehicle_processed)
      std::printf("  frame %4d: vehicle frame DROPPED (reconfiguring); "
                  "pedestrian still processed: %s\n",
                  f.index, f.pedestrian_processed ? "yes" : "no");
    if (f.active_config != last_config) {
      std::printf("  frame %4d: partition now holds '%s'\n", f.index,
                  f.active_config.c_str());
      last_config = f.active_config;
    }
    last_condition = f.sensed;
  }

  std::printf("\nsummary:\n");
  std::printf("  reconfigurations:        %d\n", report.reconfig_count());
  for (const soc::ReconfigResult& r : report.reconfigs)
    std::printf("    -> '%s' in %.2f ms at %.0f MB/s\n", r.config_name.c_str(),
                r.duration().as_ms(), r.throughput_mbps());
  std::printf("  dropped vehicle frames:  %d (one per reconfiguration)\n",
              report.dropped_vehicle_frames());
  std::printf("  pedestrian frames:       %d of %zu (static partition)\n",
              report.pedestrian_frames_processed(), report.frames.size());
  std::printf("  vehicle availability:    %.4f%%\n",
              100.0 * report.vehicle_availability());
  if (detect) {
    const det::MatchResult m = report.total_vehicle_match();
    std::printf("  vehicle detection:       %d hits, %d misses, %d false "
                "alarms over the drive\n",
                m.true_positives, m.false_negatives, m.false_positives);
  }
  return 0;
}
