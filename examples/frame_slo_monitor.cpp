// frame_slo_monitor: live SLO health monitoring over the serving runtime.
//
// Serves the canonical drive twice through the concurrent StreamServer with
// the always-on telemetry pipeline enabled:
//
//   1. with a comfortable 20 ms frame budget — streams stay HEALTHY,
//   2. with an impossibly tight budget against a slowed-down simulated
//      accelerator — the frame_deadline SLO rule drives every stream to
//      UNHEALTHY and health transitions fire live callbacks.
//
// The telemetry exporter writes one JSON object per sampling window to a
// JSONL sink; the example tails the per-stream counters out of the final
// window and prints the health transition log.
//
// Self-validating: exits non-zero if the healthy run degrades, the tight
// run fails to go UNHEALTHY, or the telemetry sink is missing/invalid.
//
//   build/examples/frame_slo_monitor [telemetry.jsonl]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/slo.hpp"
#include "avd/runtime/stream_server.hpp"

namespace {

std::vector<avd::data::DriveSequence> make_streams(int n, std::uint64_t seed) {
  std::vector<avd::data::DriveSequence> streams;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    avd::data::SequenceSpec spec =
        avd::data::DriveSequence::canonical_drive({240, 136}, 8);
    spec.seed = seed + i;
    streams.emplace_back(spec);
  }
  return streams;
}

void print_results(const std::vector<avd::runtime::StreamResult>& results) {
  for (const avd::runtime::StreamResult& r : results) {
    std::printf("  stream %d: %zu frames, %llu deadline misses, health %s\n",
                r.stream, r.report.frames.size(),
                static_cast<unsigned long long>(r.deadline_misses),
                avd::obs::to_string(r.health));
    for (const avd::obs::HealthTransition& t : r.health_transitions)
      std::printf("    transition %s -> %s (%s)\n", avd::obs::to_string(t.from),
                  avd::obs::to_string(t.to), t.reason.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string jsonl_path =
      argc > 1 ? argv[1] : "frame_slo_telemetry.jsonl";

  std::printf("=== frame_slo_monitor ===\n\n");
  std::printf("training models (small budget)...\n");
  avd::core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 40;
  budget.pedestrian_pos = budget.pedestrian_neg = 30;
  budget.dbn_windows_per_class = 40;
  budget.pairing_scenes = 20;
  const avd::core::SystemModels models = avd::core::build_system_models(budget);
  avd::core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;  // control plane only: latency comes from the
                              // simulated accelerator below
  const avd::core::AdaptiveSystem system(models, cfg);

  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::printf("FAIL: %s\n", what);
    ok = false;
  };

  // --- Run 1: comfortable budget, everything healthy. --------------------
  std::printf("\n[1] comfortable budget (%.0f ms per frame)\n", 20.0);
  {
    avd::runtime::StreamServerConfig sc;
    sc.slo.enabled = true;
    sc.slo.frame_budget_ms = 20.0;  // the paper's 50 fps HDTV contract
    sc.slo.telemetry_period = std::chrono::milliseconds(2);
    avd::runtime::StreamServer server(system, sc);
    const std::vector<avd::runtime::StreamResult> results =
        server.serve_sequences(make_streams(2, 900));
    print_results(results);
    for (const avd::runtime::StreamResult& r : results)
      if (r.health != avd::obs::HealthState::Healthy)
        fail("comfortable budget should stay HEALTHY");
  }

  // --- Run 2: impossible budget, live transitions to UNHEALTHY. ----------
  std::printf("\n[2] tight budget (0.5 ms) vs a 2 ms simulated accelerator\n");
  {
    avd::runtime::StreamServerConfig sc;
    sc.detect_workers = 2;
    sc.simulated_accel_ms = 2.0;
    sc.slo.enabled = true;
    sc.slo.frame_budget_ms = 0.5;
    sc.slo.telemetry_period = std::chrono::milliseconds(1);
    sc.slo.telemetry_jsonl = jsonl_path;
    sc.slo.hysteresis.breaches_to_worsen = 1;
    sc.slo.hysteresis.clears_to_recover = 1000;  // no flapping on idle tails
    avd::runtime::StreamServer server(system, sc);
    server.set_health_callback(
        [](int stream, const avd::obs::HealthTransition& t) {
          std::printf("  [callback] stream %d: %s -> %s\n", stream,
                      avd::obs::to_string(t.from), avd::obs::to_string(t.to));
        });
    const std::vector<avd::runtime::StreamResult> results =
        server.serve_sequences(make_streams(2, 910));
    print_results(results);
    for (const avd::runtime::StreamResult& r : results) {
      if (r.health != avd::obs::HealthState::Unhealthy)
        fail("tight budget should reach UNHEALTHY");
      if (r.health_transitions.empty()) fail("no health transitions recorded");
    }
  }

  // --- Telemetry sink: one valid JSON object per sampling window. --------
  std::printf("\ntelemetry sink: %s\n", jsonl_path.c_str());
  std::ifstream in(jsonl_path);
  if (!in.is_open()) fail("telemetry JSONL sink missing");
  std::size_t windows = 0;
  std::string last;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    if (!avd::obs::json::valid(line)) fail("telemetry line is not valid JSON");
    ++windows;
    last = line;
  }
  if (windows == 0) fail("telemetry sink has no samples");
  std::printf("  %zu sampling windows\n", windows);
  if (const std::optional<avd::obs::json::Value> doc =
          avd::obs::json::parse(last)) {
    if (const avd::obs::json::Value* counters = doc->find("counters")) {
      // Per-stream series carry a stream label; the telemetry thread rolls
      // labeled series up into the fleet-wide base name before sampling.
      for (const char* key :
           {"runtime.frames{stream=\"0\"}",
            "runtime.deadline_miss{stream=\"0\"}", "runtime.frames"}) {
        const avd::obs::json::Value* v = counters->find(key);
        std::printf("  final %s = %.0f\n", key, v != nullptr ? v->number : 0.0);
        if (v == nullptr) fail("final telemetry window missing SLO counter");
      }
    }
  }

  std::printf("\nself-check: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
