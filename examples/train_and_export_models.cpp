// Offline training workflow (Fig. 1, left side): train the day/dusk/combined
// vehicle SVMs, the pedestrian SVM and the taillight DBN, evaluate each on a
// held-out set, and export every model artefact to disk — the files a
// deployment would load into the accelerator block RAMs.
//
//   ./train_and_export_models <output-dir>
#include <cstdio>
#include <fstream>
#include <string>

#include "avd/core/system_models.hpp"

namespace {

void export_svm(const avd::det::HogSvmModel& model, const std::string& dir) {
  const std::string path = dir + "/" + model.name + ".hogsvm";
  std::ofstream out(path);
  model.save(out);
  std::printf("  wrote %s (%zu weights)\n", path.c_str(),
              model.svm.dimension());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace avd;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];

  std::printf("training the full model bundle...\n");
  core::TrainingBudget budget;  // library defaults
  const core::SystemModels models = core::build_system_models(budget);

  std::printf("exporting:\n");
  export_svm(models.day, dir);
  export_svm(models.dusk, dir);
  export_svm(models.combined, dir);
  export_svm(models.pedestrian, dir);
  {
    const std::string path = dir + "/taillight.dbn";
    std::ofstream out(path);
    models.dark.dbn().save(out);
    std::printf("  wrote %s (DBN 81-20-8-4)\n", path.c_str());
  }
  {
    const std::string path = dir + "/pairing.svm";
    std::ofstream out(path);
    models.dark.pairing_svm().save(out);
    std::printf("  wrote %s\n", path.c_str());
  }

  // Round-trip check: reload one SVM and verify predictions agree.
  {
    std::ifstream in(dir + "/day.hogsvm");
    const det::HogSvmModel reloaded = det::HogSvmModel::load(in);
    ml::Rng rng(42);
    const img::ImageU8 patch = data::render_vehicle_patch(
        data::LightingCondition::Day, reloaded.window, rng);
    std::printf("\nround-trip check: original %.4f vs reloaded %.4f\n",
                models.day.decision(patch), reloaded.decision(patch));
  }

  // Held-out evaluation of the exported models.
  data::VehiclePatchSpec test{data::LightingCondition::Day, {64, 64}, 100, 100,
                              0.0, 606060};
  const auto counts =
      det::evaluate_patches(models.day, data::make_vehicle_patches(test));
  std::printf("day model held-out accuracy: %.1f%%\n",
              100.0 * counts.accuracy());
  return 0;
}
