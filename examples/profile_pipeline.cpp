// profile_pipeline: one merged timeline + metrics dump for the whole stack.
//
// Enables the avd::obs tracer, serves the canonical drive through the
// concurrent StreamServer (which exercises core control steps, both
// detectors, soc partial reconfiguration and the runtime stages), then:
//
//   * writes a merged Chrome trace — wall-clock spans from every
//     instrumented layer plus the simulated-time event log — for
//     chrome://tracing or ui.perfetto.dev,
//   * runs the span-sampling profiler across the serve and writes the
//     aggregate as flamegraph.pl collapsed stacks (<trace stem>.collapsed —
//     CI uploads it as an artifact),
//   * prints the metrics registry as JSON and Prometheus text.
//
// Self-validating: exits non-zero if the trace is empty, is not valid JSON,
// lacks spans from any of the four instrumented layers, or if the sampled
// profile fails to attribute a plurality of stage samples to the detect
// stage (the heavy stage by construction). scripts/check.sh runs it as a
// smoke test.
//
//   build/examples/profile_pipeline [trace.json]
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "avd/obs/frame_trace.hpp"
#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/sample_profiler.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/stream_server.hpp"
#include "avd/soc/trace_export.hpp"

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "pipeline_profile.json";

  std::printf("=== profile_pipeline ===\n\n");
  std::printf("training models (small budget)...\n");
  avd::core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 60;
  budget.pedestrian_pos = budget.pedestrian_neg = 40;
  budget.dbn_windows_per_class = 60;
  budget.pairing_scenes = 30;
  const avd::core::SystemModels models = avd::core::build_system_models(budget);

  avd::core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  const avd::core::AdaptiveSystem system(models, cfg);

  // Two streams of the canonical day->tunnel->dusk->dark drive: lighting
  // changes force soc reconfigurations, darkness exercises the DBN path.
  std::vector<avd::data::DriveSequence> streams;
  for (std::uint64_t i = 0; i < 2; ++i) {
    avd::data::SequenceSpec spec =
        avd::data::DriveSequence::canonical_drive({320, 180}, 10);
    spec.seed = 40 + i;
    streams.emplace_back(spec);
  }

  avd::obs::Tracer& tracer = avd::obs::Tracer::global();
  avd::obs::MetricsRegistry& registry = avd::obs::MetricsRegistry::global();
  tracer.clear();
  registry.reset_values();
  tracer.set_enabled(true);

  avd::runtime::StreamServerConfig sc;
  sc.detect_workers = 2;
  avd::runtime::StreamServer server(system, sc);
  std::printf("serving %zu streams (%d frames each), tracing enabled...\n",
              streams.size(), streams[0].frame_count());
  // The span-sampling profiler runs across the whole serve: at 97 Hz it
  // snapshots every worker's open span stack; the aggregate becomes the
  // .collapsed artifact below.
  avd::obs::SampleProfiler profiler;
  profiler.start();
  const std::vector<avd::runtime::StreamResult> results =
      server.serve_sequences(streams);
  const avd::obs::ProfileReport profile = profiler.stop();
  tracer.set_enabled(false);

  std::size_t frames = 0;
  for (const avd::runtime::StreamResult& r : results)
    frames += r.report.frames.size();

  // --- Merged trace: wall-clock spans + simulated-time server events. ---
  const std::vector<avd::obs::SpanRecord> spans = tracer.drain();
  const avd::soc::EventLog server_log = server.server_log();
  avd::soc::write_chrome_trace(server_log, spans, trace_path);
  std::printf("\nwrote merged trace to %s (%zu spans, %zu events, "
              "%llu dropped)\n",
              trace_path.c_str(), spans.size(), server_log.size(),
              static_cast<unsigned long long>(tracer.dropped()));

  // --- Collapsed-stack profile (flamegraph.pl input; CI artifact). -------
  const std::string collapsed_path =
      (trace_path.size() > 5 &&
       trace_path.compare(trace_path.size() - 5, 5, ".json") == 0
           ? trace_path.substr(0, trace_path.size() - 5)
           : trace_path) +
      ".collapsed";
  const std::string collapsed = profile.to_collapsed();
  {
    std::FILE* f = std::fopen(collapsed_path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(collapsed.data(), 1, collapsed.size(), f);
      std::fclose(f);
    }
  }
  std::printf("wrote collapsed profile to %s (%llu ticks, %llu samples, "
              "%zu unique stacks)\n",
              collapsed_path.c_str(),
              static_cast<unsigned long long>(profile.ticks),
              static_cast<unsigned long long>(profile.samples),
              profile.stacks.size());

  // --- Metrics: stage gauges pushed into the registry, then both dumps. ---
  avd::runtime::publish_runtime_metrics(server.metrics(), registry);
  const std::string metrics_json = registry.to_json();
  std::printf("\nmetrics (JSON):\n%s\n", metrics_json.c_str());
  std::printf("\nmetrics (Prometheus):\n%s", registry.to_prometheus().c_str());

  // --- Self-validation (this doubles as the check.sh smoke test). ---
  bool ok = true;
  const auto fail = [&ok](const char* what) {
    std::printf("FAIL: %s\n", what);
    ok = false;
  };

  if (frames == 0) fail("no frames served");
  if (spans.empty()) fail("trace has no spans");
  std::set<std::string> sources;
  for (const avd::obs::SpanRecord& s : spans)
    sources.insert(std::string(s.source).substr(0, std::string(s.source).find('/')));
  std::printf("\nspan sources:");
  for (const std::string& s : sources) std::printf(" %s", s.c_str());
  std::printf("\n");
  for (const char* layer : {"core", "detect", "soc", "runtime"})
    if (!sources.contains(layer))
      fail((std::string("no spans from layer: ") + layer).c_str());

  const std::string trace = [&trace_path] {
    std::FILE* f = std::fopen(trace_path.c_str(), "rb");
    std::string text;
    if (f != nullptr) {
      char buf[4096];
      std::size_t n = 0;
      while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
      std::fclose(f);
    }
    return text;
  }();
  if (trace.empty()) fail("trace file empty or unreadable");
  const std::optional<avd::obs::json::Value> doc = avd::obs::json::parse(trace);
  if (!doc.has_value()) fail("trace is not valid JSON");
  if (!avd::obs::json::valid(metrics_json)) fail("metrics JSON invalid");

  // Sampled profile: non-empty, JSON form parseable, and a plurality of the
  // stage-rooted samples must land under detect_frame — the pipeline's heavy
  // stage runs both pixel-level detectors while ingest/control/report are
  // bookkeeping.
  if (profile.samples == 0) fail("profiler collected no samples");
  if (collapsed.empty()) fail("collapsed profile is empty");
  if (!avd::obs::json::valid(profile.to_json()))
    fail("profile JSON invalid");
  std::uint64_t by_stage[4] = {0, 0, 0, 0};  // ingest, control, detect, report
  const char* stage_names[4] = {"ingest_frame", "control_frame",
                                "detect_frame", "collect_report"};
  for (const avd::obs::ProfileStack& s : profile.stacks) {
    if (s.frames.empty()) continue;
    for (int i = 0; i < 4; ++i)
      if (s.frames.front() == stage_names[i]) by_stage[i] += s.samples;
  }
  std::printf("profile stage attribution:");
  for (int i = 0; i < 4; ++i)
    std::printf(" %s=%llu", stage_names[i],
                static_cast<unsigned long long>(by_stage[i]));
  std::printf("\n");
  if (by_stage[2] == 0) fail("profiler attributed no samples to detect");
  for (int i = 0; i < 4; ++i)
    if (i != 2 && by_stage[i] > by_stage[2])
      fail("detect is not the plurality stage in the sampled profile");

  // Causal linkage: every reported frame must assemble into one connected,
  // cross-thread span chain, and the exported trace must draw its flow arc.
  const std::vector<avd::obs::FrameTrace> frame_traces =
      avd::obs::assemble_frame_traces(spans);
  std::size_t connected_frames = 0;
  std::uint64_t critical_path_total = 0;
  for (const avd::obs::FrameTrace& t : frame_traces) {
    if (!t.has_span("collect_report")) continue;  // partial tail traces
    if (!t.connected() || t.thread_count() < 2)
      fail("frame trace not connected across threads");
    ++connected_frames;
    critical_path_total += t.critical_path_ns();
  }
  if (connected_frames < frames) fail("fewer connected frame traces than frames");
  std::printf("frame traces: %zu connected, mean critical path %.1f us\n",
              connected_frames,
              connected_frames > 0
                  ? static_cast<double>(critical_path_total) / 1000.0 /
                        static_cast<double>(connected_frames)
                  : 0.0);

  std::size_t flow_starts = 0, flow_finishes = 0;
  if (doc.has_value()) {
    if (const avd::obs::json::Value* events = doc->find("traceEvents")) {
      for (const avd::obs::json::Value& e : events->array) {
        const avd::obs::json::Value* ph = e.find("ph");
        if (ph == nullptr) continue;
        if (ph->string == "s") ++flow_starts;
        if (ph->string == "f") ++flow_finishes;
      }
    }
  }
  std::printf("flow arcs: %zu starts, %zu finishes\n", flow_starts,
              flow_finishes);
  if (flow_starts < frames) fail("exported trace is missing frame flow arcs");
  if (flow_starts != flow_finishes) fail("unbalanced flow start/finish events");

  // --- Flight recorder: force a breach, validate the dumped bundle. ---
  // A tiny second serve with an impossible frame budget trips the SLO
  // monitor to UNHEALTHY; the server dumps its flight bundle next to the
  // trace (CI uploads both). The bundle must parse, carry the transition,
  // and hold the breaching frames' connected chains.
  {
    const std::size_t slash = trace_path.rfind('/');
    avd::runtime::StreamServerConfig fc;
    fc.detect_workers = 2;
    fc.simulated_accel_ms = 1.0;
    fc.slo.enabled = true;
    fc.slo.frame_budget_ms = 1e-4;  // 100 ns: every frame breaches
    fc.slo.telemetry_period = std::chrono::milliseconds(1);
    fc.slo.hysteresis.breaches_to_worsen = 1;
    fc.slo.hysteresis.clears_to_recover = 1000;
    fc.slo.flight_dump_dir =
        slash == std::string::npos ? "." : trace_path.substr(0, slash);
    avd::runtime::StreamServer breach_server(system, fc);

    std::vector<avd::data::DriveSequence> short_streams;
    avd::data::SequenceSpec spec =
        avd::data::DriveSequence::canonical_drive({320, 180}, 6);
    spec.seed = 77;
    short_streams.emplace_back(spec);

    tracer.clear();
    tracer.set_enabled(true);
    breach_server.serve_sequences(short_streams);
    tracer.set_enabled(false);
    tracer.clear();

    const std::string& bundle_path = breach_server.last_flight_bundle_path();
    if (bundle_path.empty()) {
      fail("forced SLO breach produced no flight bundle");
    } else {
      std::FILE* f = std::fopen(bundle_path.c_str(), "rb");
      std::string text;
      if (f != nullptr) {
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
          text.append(buf, n);
        std::fclose(f);
      }
      const std::optional<avd::obs::json::Value> bundle =
          avd::obs::json::parse(text);
      if (!bundle.has_value()) {
        fail("flight bundle is not valid JSON");
      } else {
        const avd::obs::json::Value* transitions =
            bundle->find("slo_transitions");
        if (transitions == nullptr || transitions->array.empty())
          fail("flight bundle carries no SLO transitions");
        std::size_t bundled_chains = 0;
        if (const avd::obs::json::Value* bstreams = bundle->find("streams")) {
          for (const auto& [id, entry] : bstreams->object) {
            const avd::obs::json::Value* bframes = entry.find("frames");
            if (bframes == nullptr) continue;
            for (const avd::obs::json::Value& frame : bframes->array) {
              const avd::obs::json::Value* connected =
                  frame.find("connected");
              if (connected == nullptr || !connected->boolean)
                fail("flight bundle frame chain not connected");
              const avd::obs::json::Value* fspans = frame.find("spans");
              if (fspans != nullptr && !fspans->array.empty())
                ++bundled_chains;
            }
          }
        }
        if (bundled_chains == 0)
          fail("flight bundle holds no frame chains");
        std::printf("flight bundle: %s (%zu chains, %zu transitions)\n",
                    bundle_path.c_str(), bundled_chains,
                    transitions != nullptr ? transitions->array.size() : 0);
      }
    }
  }

  std::printf("\nself-check: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
