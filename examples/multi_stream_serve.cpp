// multi_stream_serve: the serving runtime end to end.
//
// Serves four concurrent scripted drives (different seeds, one passing
// through countryside) through the adaptive pipeline with a 4-worker detect
// pool, prints per-stream adaptive summaries and per-stage latency metrics,
// then exports worker timeline + metrics as a Chrome/Perfetto trace.
//
//   build/examples/multi_stream_serve [trace.json]
#include <cstdio>
#include <string>
#include <vector>

#include "avd/runtime/stream_server.hpp"
#include "avd/runtime/thread_pool.hpp"
#include "avd/soc/trace_export.hpp"

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1] : "multi_stream_trace.json";

  std::printf("=== multi_stream_serve ===\n\n");
  std::printf("training models (small budget)...\n");
  avd::core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 60;
  budget.pedestrian_pos = budget.pedestrian_neg = 40;
  budget.dbn_windows_per_class = 60;
  budget.pairing_scenes = 30;
  const avd::core::SystemModels models = avd::core::build_system_models(budget);

  // One shared pool carries both levels of parallelism: the sliding-window
  // scanner splits pyramid levels/row bands across it, and the server's
  // detect stage (scan_pool below) runs its frame workers on it too — no
  // second thread pool, no oversubscription, identical detections.
  avd::runtime::ThreadPool scan_pool(4);

  avd::core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = true;
  cfg.sliding.pool = &scan_pool;
  const avd::core::AdaptiveSystem system(models, cfg);

  // Four cameras: the canonical day->tunnel->dusk->dark drive under four
  // different worlds (seeds), one of them on countryside roads.
  std::vector<avd::data::DriveSequence> streams;
  for (std::uint64_t i = 0; i < 4; ++i) {
    avd::data::SequenceSpec spec =
        avd::data::DriveSequence::canonical_drive({320, 180}, 10);
    spec.seed = 40 + i;
    if (i == 3)
      for (avd::data::DriveSegment& seg : spec.segments)
        seg.road = avd::data::RoadType::Countryside;
    streams.emplace_back(spec);
  }

  avd::runtime::StreamServerConfig sc;
  sc.ingest_workers = 2;
  sc.control_workers = 2;
  sc.detect_workers = 4;
  sc.queue_capacity = 8;
  // Try OverflowPolicy::DropOldest here to watch load shedding: overflowing
  // frames come back as vehicle_processed=false, the serving-layer analogue
  // of the paper's one-frame reconfiguration drop.
  sc.detect_policy = avd::runtime::OverflowPolicy::Block;
  sc.scan_pool = &scan_pool;
  avd::runtime::StreamServer server(system, sc);

  std::printf("serving %zu streams (%d frames each) with %d detect workers...\n\n",
              streams.size(), streams[0].frame_count(), sc.detect_workers);
  const std::vector<avd::runtime::StreamResult> results =
      server.serve_sequences(streams);

  std::printf("%6s %7s %9s %8s %13s %13s %7s\n", "stream", "frames",
              "reconfigs", "dropped", "availability", "bp-dropped", "recall");
  for (const avd::runtime::StreamResult& r : results) {
    const avd::det::MatchResult match = r.report.total_vehicle_match();
    const int truth = match.true_positives + match.false_negatives;
    std::printf("%6d %7zu %9d %8d %12.1f%% %13llu %6.1f%%\n", r.stream,
                r.report.frames.size(), r.report.reconfig_count(),
                r.report.dropped_vehicle_frames(),
                100.0 * r.report.vehicle_availability(),
                static_cast<unsigned long long>(r.backpressure_drops),
                truth > 0 ? 100.0 * match.true_positives / truth : 0.0);
  }

  std::printf("\nper-stage metrics:\n");
  for (const avd::runtime::StageSnapshot& s : server.metrics().snapshot()) {
    std::printf("  %-8s processed=%-5llu dropped=%-3llu queue_hw=%-3zu "
                "p50=%-8.2fms p95=%-8.2fms p99=%-8.2fms\n",
                s.stage.c_str(),
                static_cast<unsigned long long>(s.processed),
                static_cast<unsigned long long>(s.dropped),
                s.queue_high_water, static_cast<double>(s.p50_ns) / 1e6,
                static_cast<double>(s.p95_ns) / 1e6,
                static_cast<double>(s.p99_ns) / 1e6);
  }

  // Timeline + metrics out through the soc trace path: load the file in
  // chrome://tracing or ui.perfetto.dev.
  avd::soc::EventLog trace_log = server.server_log();
  avd::runtime::append_metrics_events(
      server.metrics(), avd::soc::TimePoint{0}, trace_log);
  avd::soc::write_chrome_trace(trace_log, trace_path);
  std::printf("\nwrote worker/metrics trace to %s (%zu events)\n",
              trace_path.c_str(), trace_log.size());

  // Sanity: stream 0 served concurrently == stream 0 run sequentially.
  const avd::core::AdaptiveRunReport sequential = system.run(streams[0]);
  const bool same =
      sequential.frames.size() == results[0].report.frames.size() &&
      sequential.reconfig_count() == results[0].report.reconfig_count() &&
      sequential.total_vehicle_match().true_positives ==
          results[0].report.total_vehicle_match().true_positives;
  std::printf("stream 0 matches sequential AdaptiveSystem::run(): %s\n",
              same ? "yes" : "NO");
  return same ? 0 : 1;
}
