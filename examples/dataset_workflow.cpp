// The offline data workflow a team adopting this library would run:
//
//   1. generate (or import) a dataset and persist it as a PGM directory —
//      the exchange format where real UPM/SYSU-style imagery can be dropped
//      in without touching any training code;
//   2. select the SVM cost by stratified cross-validation;
//   3. standardise features where scales are wild (shown on the pairing
//      features), train, and fold the scaler back into the model so the
//      deployed artefact consumes raw features.
//
//   ./dataset_workflow <work-dir>
#include <cstdio>
#include <string>

#include "avd/datasets/dataset_io.hpp"
#include "avd/detect/dark_detector.hpp"
#include "avd/detect/hog_svm_detector.hpp"
#include "avd/ml/cross_validation.hpp"
#include "avd/ml/standardizer.hpp"

int main(int argc, char** argv) {
  using namespace avd;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <work-dir>\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];

  // --- 1. dataset persistence ---
  data::VehiclePatchSpec spec;
  spec.n_positive = spec.n_negative = 120;
  const data::PatchDataset generated = data::make_vehicle_patches(spec);
  data::save_dataset(generated, dir + "/day_vehicles");
  const data::PatchDataset dataset = data::load_dataset(dir + "/day_vehicles");
  std::printf("dataset: %zu patches (%zu positive) persisted to and reloaded "
              "from %s/day_vehicles\n",
              dataset.size(), dataset.positives(), dir.c_str());

  // --- 2. cost selection by cross-validation ---
  ml::SvmProblem problem;
  const hog::HogParams hog_params;
  for (const auto& p : dataset.patches)
    problem.add(hog::compute_descriptor(p.gray, hog_params), p.label);
  const ml::GridSearchResult grid =
      ml::grid_search_c(problem, {0.01, 0.1, 1.0, 10.0}, 5);
  std::printf("\nC grid search (5-fold):\n");
  for (const auto& [c, acc] : grid.tried)
    std::printf("  C = %-6g -> %.1f%%%s\n", c, 100.0 * acc,
                c == grid.best_c ? "  <- selected" : "");

  det::HogSvmTrainOptions opts;
  opts.svm.c = grid.best_c;
  const det::HogSvmModel model = det::train_hog_svm(dataset, "day", opts);
  data::VehiclePatchSpec held_out = spec;
  held_out.seed = 999;
  std::printf("held-out accuracy at selected C: %.1f%%\n",
              100.0 * det::evaluate_patches(
                          model, data::make_vehicle_patches(held_out))
                          .accuracy());

  // --- 3. standardisation on wildly-scaled features ---
  // The pairing features mix pixel distances and unit-scale ratios; show the
  // fit/fold-into round trip on synthetic pairs.
  ml::SvmProblem pairs;
  ml::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const bool pos = i % 2 == 0;
    pairs.add({static_cast<float>(rng.gaussian(pos ? 40.0 : 90.0, 10.0)),
               static_cast<float>(rng.gaussian(pos ? 0.9 : 0.5, 0.1))},
              pos ? +1 : -1);
  }
  const ml::Standardizer scaler = ml::Standardizer::fit(pairs.features);
  ml::SvmTrainReport raw_rep, std_rep;
  (void)ml::SvmTrainer().train(pairs, raw_rep);
  const ml::LinearSvm std_model =
      ml::SvmTrainer().train(scaler.transform(pairs), std_rep);
  const ml::LinearSvm deployable = scaler.fold_into(std_model);
  std::printf(
      "\nstandardisation: convergence %d -> %d epochs; folded model consumes "
      "raw features (check: %+.3f)\n",
      raw_rep.epochs_run, std_rep.epochs_run,
      deployable.decision(pairs.features[0]));
  return 0;
}
