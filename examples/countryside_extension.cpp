// The paper's §I motivation, implemented: "animal detection on the road
// could be a useful feature ... in some countryside roads ... However, this
// feature might not be used most of the time when the driving area is
// limited to urban roads."
//
// This example enables the third partial configuration ("countryside" =
// vehicle pipeline + animal classifier), drives urban -> countryside ->
// countryside night -> urban, and shows the partition swapping between all
// three configurations while pedestrian detection never stops.
//
//   ./countryside_extension [frames-per-segment]
#include <cstdio>
#include <cstdlib>

#include "avd/core/adaptive_system.hpp"

int main(int argc, char** argv) {
  using namespace avd;
  const int frames = argc > 1 ? std::max(10, std::atoi(argv[1])) : 60;

  std::printf("training models (including the animal classifier)...\n");
  core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 70;
  budget.pedestrian_pos = budget.pedestrian_neg = 45;
  budget.dbn_windows_per_class = 90;
  budget.pairing_scenes = 45;
  budget.animal_pos = budget.animal_neg = 70;  // enables the extension

  core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;
  core::AdaptiveSystem system(core::build_system_models(budget), cfg);

  data::SequenceSpec spec;
  spec.frame_size = {480, 270};
  spec.animals_per_frame = 1;
  using data::LightingCondition;
  using data::RoadType;
  spec.segments = {
      {LightingCondition::Day, frames, -1.0, RoadType::Urban},
      {LightingCondition::Day, frames, -1.0, RoadType::Countryside},
      {LightingCondition::Dusk, frames, -1.0, RoadType::Countryside},
      {LightingCondition::Dark, frames, -1.0, RoadType::Countryside},
      {LightingCondition::Day, frames, -1.0, RoadType::Urban},
  };
  const data::DriveSequence drive(spec);
  std::printf("driving %d frames: urban day -> countryside day -> "
              "countryside dusk -> countryside night -> urban day\n\n",
              drive.frame_count());

  const core::AdaptiveRunReport report = system.run(drive);

  std::string last;
  for (const core::AdaptiveFrameReport& f : report.frames) {
    if (f.active_config != last) {
      std::printf("frame %4d: partition -> '%s'\n", f.index,
                  f.active_config.c_str());
      last = f.active_config;
    }
  }

  std::printf("\nreconfigurations: %d\n", report.reconfig_count());
  for (const soc::ReconfigResult& r : report.reconfigs)
    std::printf("  -> %-12s %.2f ms at %.0f MB/s\n", r.config_name.c_str(),
                r.duration().as_ms(), r.throughput_mbps());
  std::printf("dropped vehicle frames: %d (one per reconfiguration)\n",
              report.dropped_vehicle_frames());
  std::printf("pedestrian frames:      %d of %zu\n",
              report.pedestrian_frames_processed(), report.frames.size());
  std::printf(
      "\nNote the dusk->dark transition inside the countryside stretch: "
      "darkness overrides\nthe road type (animals are invisible at night; "
      "taillights are the only signal).\n");
  return 0;
}
