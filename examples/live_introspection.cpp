// live_introspection: the embedded ops server, exercised end to end over
// real sockets.
//
// Trains a small system, starts a StreamServer with the ops plane enabled,
// and keeps a multi-stream serve running while it:
//
//   * sweeps every endpoint — /metricsz, /metricsz.json, /healthz, /tracez,
//     /flightz, /statusz, /profilez — through the HTTP client and validates
//     each payload (JSON bodies through the strict obs::json parser,
//     /metricsz against the Prometheus content type, /profilez against the
//     live pipeline's span names),
//   * forces an SLO breach on a second ops-enabled server and polls its
//     /healthz until the 200 -> 503 flip is observed,
//   * optionally publishes its port (--port-file) and keeps serving
//     (--linger-seconds N) so an external scraper — scripts/check.sh uses
//     curl — can hit the same endpoints while frames are in flight.
//
// Exits non-zero when any check fails.
//
//   build/examples/live_introspection [--port-file PATH]
//                                     [--linger-seconds N]
//   build/examples/live_introspection --parse FILE            # JSON lint
//   build/examples/live_introspection --parse-collapsed FILE  # profile lint
//
// The --parse modes are standalone payload validators (no models trained,
// no server started): check.sh pipes curl output through them so "parseable
// by the strict parser" is checked by the same code in-process and over the
// wire.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "avd/obs/json.hpp"
#include "avd/obs/metrics.hpp"
#include "avd/obs/ops_server.hpp"
#include "avd/obs/trace.hpp"
#include "avd/runtime/stream_server.hpp"

namespace {

using namespace std::chrono_literals;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// --parse: the file must be one complete, strictly valid JSON document.
int parse_json_file(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) {
    std::printf("FAIL: %s is empty or unreadable\n", path.c_str());
    return 1;
  }
  if (!avd::obs::json::valid(text)) {
    std::printf("FAIL: %s is not valid JSON\n", path.c_str());
    return 1;
  }
  std::printf("ok: %s parses strictly (%zu bytes)\n", path.c_str(),
              text.size());
  return 0;
}

/// --parse-collapsed: non-empty flamegraph.pl collapsed-stack text — every
/// line "frame[;frame...] count" — with at least one detect-stage stack.
int parse_collapsed_file(const std::string& path) {
  const std::string text = read_file(path);
  if (text.empty()) {
    std::printf("FAIL: %s is empty (profiler saw no open spans)\n",
                path.c_str());
    return 1;
  }
  std::istringstream lines(text);
  std::size_t n = 0;
  bool saw_detect = false;
  for (std::string line; std::getline(lines, line);) {
    if (line.empty()) continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      std::printf("FAIL: %s line %zu is not 'stack count': %s\n",
                  path.c_str(), n + 1, line.c_str());
      return 1;
    }
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + sp + 1, &end, 10);
    if (end == line.c_str() + sp + 1 || *end != '\0' || count == 0) {
      std::printf("FAIL: %s line %zu has a bad count: %s\n", path.c_str(),
                  n + 1, line.c_str());
      return 1;
    }
    if (line.compare(0, sp, "detect_frame") == 0 ||
        line.find("detect_frame;") != std::string::npos ||
        line.compare(0, 13, "detect_frame;") == 0)
      saw_detect = true;
    ++n;
  }
  if (n == 0) {
    std::printf("FAIL: %s holds no stacks\n", path.c_str());
    return 1;
  }
  if (!saw_detect) {
    std::printf("FAIL: %s has no detect-stage stacks\n", path.c_str());
    return 1;
  }
  std::printf("ok: %s holds %zu collapsed stacks (detect stage present)\n",
              path.c_str(), n);
  return 0;
}

std::vector<avd::data::DriveSequence> make_streams(int n, int per_segment,
                                                   std::uint64_t seed) {
  std::vector<avd::data::DriveSequence> seqs;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(n); ++i) {
    avd::data::SequenceSpec spec =
        avd::data::DriveSequence::canonical_drive({240, 136}, per_segment);
    spec.seed = seed + i;
    seqs.emplace_back(spec);
  }
  return seqs;
}

}  // namespace

int main(int argc, char** argv) {
  std::string port_file;
  double linger_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--parse" && i + 1 < argc) return parse_json_file(argv[i + 1]);
    if (arg == "--parse-collapsed" && i + 1 < argc)
      return parse_collapsed_file(argv[i + 1]);
    if (arg == "--port-file" && i + 1 < argc) port_file = argv[++i];
    if (arg == "--linger-seconds" && i + 1 < argc)
      linger_seconds = std::atof(argv[++i]);
  }

  bool ok = true;
  const auto fail = [&ok](const std::string& what) {
    std::printf("FAIL: %s\n", what.c_str());
    ok = false;
  };

  std::printf("=== live_introspection ===\n\n");
  std::printf("training models (small budget)...\n");
  avd::core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 30;
  budget.pedestrian_pos = budget.pedestrian_neg = 20;
  budget.dbn_windows_per_class = 40;
  budget.pairing_scenes = 20;
  const avd::core::SystemModels models = avd::core::build_system_models(budget);
  avd::core::AdaptiveSystemConfig cfg;
  cfg.run_detectors = false;  // control plane + simulated detect holds
  const avd::core::AdaptiveSystem system(models, cfg);

  avd::obs::Tracer& tracer = avd::obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);

  avd::runtime::StreamServerConfig sc;
  sc.detect_workers = 2;
  sc.simulated_accel_ms = 10.0;  // keep detect spans open for the profiler
  sc.slo.enabled = true;
  sc.slo.frame_budget_ms = 1e6;  // this server stays healthy
  sc.slo.telemetry_period = std::chrono::milliseconds(5);
  // Admission plane on (bucket off, ladder idle on a healthy server) so the
  // sweep validates the overload fields /healthz and /statusz export.
  sc.admission.enabled = true;
  sc.ops.enabled = true;
  sc.ops.server.handler_threads = 3;
  avd::runtime::StreamServer server(system, sc);
  const std::uint16_t port = server.ops_server()->port();
  std::printf("ops server listening on 127.0.0.1:%u\n\n",
              static_cast<unsigned>(port));
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << port << '\n';
  }

  // Serve continuously: until the endpoint sweep is done AND the linger
  // window (for external curl scrapers) has elapsed.
  std::atomic<bool> sweep_done{false};
  const auto linger_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(linger_seconds));
  std::atomic<std::uint64_t> frames_served{0};
  std::thread serving([&] {
    std::uint64_t batch = 0;
    while (!sweep_done.load() ||
           std::chrono::steady_clock::now() < linger_deadline) {
      const auto results =
          server.serve_sequences(make_streams(4, 4, 9000 + 100 * batch));
      for (const auto& r : results) frames_served += r.report.frames.size();
      ++batch;
    }
  });

  // --- endpoint sweep against the live serve -----------------------------
  const auto get = [&](const std::string& target)
      -> std::optional<avd::obs::HttpResponse> {
    return avd::obs::http_get(port, target);
  };
  const auto expect_json = [&](const std::string& target,
                               int expect_status) -> avd::obs::json::Value {
    const auto res = get(target);
    if (!res.has_value()) {
      fail(target + ": no response");
      return {};
    }
    if (res->status != expect_status)
      fail(target + ": status " + std::to_string(res->status));
    if (res->content_type.find("application/json") == std::string::npos)
      fail(target + ": content type " + res->content_type);
    const auto doc = avd::obs::json::parse(res->body);
    if (!doc.has_value()) {
      fail(target + ": body is not strictly valid JSON");
      return {};
    }
    std::printf("  %-28s %d, %zu bytes, parses\n", target.c_str(),
                res->status, res->body.size());
    return *doc;
  };

  std::printf("sweeping endpoints mid-serve:\n");
  const auto metricsz = get("/metricsz");
  if (!metricsz.has_value() || metricsz->status != 200) {
    fail("/metricsz unreachable");
  } else {
    if (metricsz->content_type != avd::obs::kPrometheusContentType)
      fail("/metricsz content type: " + metricsz->content_type);
    if (metricsz->body.empty() || metricsz->body.back() != '\n')
      fail("/metricsz body does not end in a newline");
    if (metricsz->body.find("process_uptime_seconds ") == std::string::npos)
      fail("/metricsz lacks process_uptime_seconds");
    if (metricsz->body.find("build_info{") == std::string::npos)
      fail("/metricsz lacks build_info");
    std::printf("  %-28s %d, %zu bytes, %s\n", "/metricsz", metricsz->status,
                metricsz->body.size(), "conformant");
  }

  const auto metrics_json = expect_json("/metricsz.json", 200);
  if (metrics_json.find("counters") == nullptr)
    fail("/metricsz.json lacks counters");

  auto healthz = expect_json("/healthz", 200);
  // The per-stream rows (and the admission controller) appear once the
  // first serve() is underway; poll briefly instead of racing it.
  for (int attempt = 0; attempt < 100; ++attempt) {
    const auto* streams = healthz.find("streams");
    const auto* adm = healthz.find("admission");
    if (streams != nullptr && !streams->array.empty() && adm != nullptr &&
        adm->boolean)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (const auto res = get("/healthz"); res.has_value())
      if (auto doc = avd::obs::json::parse(res->body); doc.has_value())
        healthz = *doc;
  }
  if (const auto* fleet = healthz.find("fleet"); fleet == nullptr)
    fail("/healthz lacks fleet state");
  else
    std::printf("  fleet health: %s\n", fleet->string.c_str());
  if (const auto* adm = healthz.find("admission");
      adm == nullptr || !adm->boolean)
    fail("/healthz does not report the admission plane as live");
  if (const auto* streams = healthz.find("streams");
      streams == nullptr || streams->array.empty()) {
    fail("/healthz lacks streams");
  } else {
    const auto& row = streams->array.front();
    for (const char* key :
         {"degrade_level", "admitted", "shed", "coasted", "degraded_scans"})
      if (row.find(key) == nullptr)
        fail(std::string("/healthz stream row lacks ") + key);
  }

  const auto tracez = expect_json("/tracez", 200);
  if (tracez.find("span_stats") == nullptr || tracez.find("retained") == nullptr)
    fail("/tracez lacks span_stats/retained");

  const auto flightz = expect_json("/flightz", 200);
  if (flightz.find("streams") == nullptr) fail("/flightz lacks streams");

  const auto statusz = expect_json("/statusz", 200);
  if (statusz.find("build") == nullptr || statusz.find("config") == nullptr)
    fail("/statusz lacks build/config");
  if (const auto* conf = statusz.find("config");
      conf != nullptr && (conf->find("admission_enabled") == nullptr ||
                          !conf->find("admission_enabled")->boolean))
    fail("/statusz config does not show admission_enabled");
  if (const auto* adm = statusz.find("admission"); adm == nullptr) {
    fail("/statusz lacks the admission aggregate");
  } else {
    for (const char* key : {"live", "max_degrade_level", "admitted", "shed",
                            "shed_by_bucket", "coasted", "degraded_scans"})
      if (adm->find(key) == nullptr)
        fail(std::string("/statusz admission aggregate lacks ") + key);
  }

  const auto profile = get("/profilez?seconds=0.5");
  if (!profile.has_value() || profile->status != 200) {
    fail("/profilez unreachable");
  } else if (profile->body.find("detect_frame") == std::string::npos) {
    fail("/profilez saw no detect_frame stacks:\n" + profile->body);
  } else {
    std::printf("  %-28s %d, %zu bytes, detect stacks present\n",
                "/profilez?seconds=0.5", profile->status,
                profile->body.size());
  }
  const auto profile_json = expect_json("/profilez?seconds=0.2&format=json", 200);
  if (profile_json.find("stacks") == nullptr)
    fail("/profilez json lacks stacks");

  // --- forced breach: watch /healthz flip 200 -> 503 ---------------------
  std::printf("\nforcing an SLO breach on a second server:\n");
  {
    avd::runtime::StreamServerConfig bc;
    bc.detect_workers = 2;
    bc.simulated_accel_ms = 5.0;
    bc.slo.enabled = true;
    bc.slo.frame_budget_ms = 1e-4;  // 100 ns: every frame misses
    bc.slo.telemetry_period = std::chrono::milliseconds(1);
    bc.slo.hysteresis.breaches_to_worsen = 1;
    bc.slo.hysteresis.clears_to_recover = 1000;
    bc.ops.enabled = true;
    avd::runtime::StreamServer breach_server(system, bc);
    const std::uint16_t bport = breach_server.ops_server()->port();

    const auto before = avd::obs::http_get(bport, "/healthz");
    if (!before.has_value() || before->status != 200)
      fail("breach server /healthz not 200 before serve");

    std::thread breach_serving(
        [&] { (void)breach_server.serve_sequences(make_streams(2, 8, 9900)); });
    bool saw_503 = false;
    const auto poll_deadline = std::chrono::steady_clock::now() + 30s;
    while (!saw_503 && std::chrono::steady_clock::now() < poll_deadline) {
      const auto res = avd::obs::http_get(bport, "/healthz");
      if (res.has_value() && res->status == 503) saw_503 = true;
      std::this_thread::sleep_for(5ms);
    }
    breach_serving.join();
    const auto after = avd::obs::http_get(bport, "/healthz");
    if (!saw_503) fail("/healthz never flipped to 503 during the breach");
    if (!after.has_value() || after->status != 503)
      fail("/healthz not 503 after the breached serve");
    else
      std::printf("  /healthz flipped 200 -> 503 and stayed (body: %s)\n",
                  after->body.c_str());
  }

  // --- hand over to external scrapers, then wind down --------------------
  if (linger_seconds > 0.0)
    std::printf("\nlingering %.1fs for external scrapers on port %u...\n",
                linger_seconds, static_cast<unsigned>(port));
  sweep_done.store(true);
  serving.join();
  tracer.set_enabled(false);
  tracer.clear();

  std::printf("\nserved %llu frames across the sweep; ops answered %llu "
              "requests\n",
              static_cast<unsigned long long>(frames_served.load()),
              static_cast<unsigned long long>(
                  server.ops_server()->requests_served()));
  std::printf("self-check: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
