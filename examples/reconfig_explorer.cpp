// Interactive-ish exploration of the Zynq SoC model (paper §IV): build a
// platform, floor-plan the reconfigurable partition, generate partial
// bitstreams and compare the four bitstream-delivery methods — including a
// what-if: how each number moves when the platform changes.
//
//   ./reconfig_explorer [icap-mhz]
#include <cstdio>
#include <cstdlib>

#include "avd/soc/frame_scheduler.hpp"
#include "avd/soc/reconfig.hpp"

int main(int argc, char** argv) {
  using namespace avd::soc;

  ZynqClocks clocks;
  if (argc > 1) {
    const unsigned long long mhz = std::strtoull(argv[1], nullptr, 10);
    if (mhz == 0) {
      std::fprintf(stderr, "usage: %s [icap-mhz > 0]\n", argv[0]);
      return 1;
    }
    clocks.icap_mhz = mhz;
  }
  const ZynqPlatform platform = default_platform(clocks);

  std::printf("platform: ICAP/PCAP at %llu MHz (ceiling %.0f MB/s), fabric "
              "%llu MHz, DDR3 %llu MHz\n",
              static_cast<unsigned long long>(platform.clocks.icap_mhz),
              config_port_ceiling_mbps(platform),
              static_cast<unsigned long long>(platform.clocks.fabric_mhz),
              static_cast<unsigned long long>(platform.clocks.ddr_mhz));

  // Floor-plan the partition for the largest configuration (dark).
  const DeviceResources device;
  const ModuleResources partition =
      floorplan_partition(dark_blocks(), device, {});
  std::printf("\nreconfigurable partition: %ld LUT, %ld FF, %ld BRAM, %ld "
              "DSP\n",
              partition.lut, partition.ff, partition.bram, partition.dsp);
  std::printf("fits day-dusk config: %s; fits dark config: %s\n",
              fits(sum_modules(day_dusk_blocks()), partition) ? "yes" : "NO",
              fits(sum_modules(dark_blocks()), partition) ? "yes" : "NO");

  const PartialBitstream bits =
      make_partial_bitstream("dark", partition, device, {});
  std::printf("partial bitstream: %.2f MB\n\n", bits.megabytes());

  // The §IV-A comparison, with the path anatomy spelled out.
  for (ReconfigMethod method :
       {ReconfigMethod::AxiHwicap, ReconfigMethod::Pcap, ReconfigMethod::ZyCap,
        ReconfigMethod::PlDmaIcap}) {
    const TransferPath path = reconfig_path(platform, method);
    const TransferRecord rec = model_transfer(path, bits.bytes);
    std::printf("%s:\n  path: ", to_string(method));
    for (std::size_t i = 0; i < path.segments.size(); ++i)
      std::printf("%s%s", i ? " -> " : "", path.segments[i].name.c_str());
    std::printf("\n  burst %u B, per-burst overhead %.0f ns, bottleneck %.0f "
                "MB/s\n",
                path.burst_bytes, path.burst_overhead().as_ns(),
                path.bottleneck_mbps());
    std::printf("  -> %.1f MB/s, %.2f ms per reconfiguration, efficiency "
                "%.1f%%\n\n",
                rec.throughput(), rec.elapsed.as_ms(),
                100.0 * rec.efficiency());
  }

  // Frame cost at 50 fps for each method.
  std::printf("frame cost at 50 fps (one reconfiguration):\n");
  for (ReconfigMethod method :
       {ReconfigMethod::AxiHwicap, ReconfigMethod::Pcap, ReconfigMethod::ZyCap,
        ReconfigMethod::PlDmaIcap}) {
    ReconfigController ctrl(platform, method);
    ctrl.stage(bits);
    const ReconfigResult result =
        ctrl.reconfigure(TimePoint{} + Duration::from_ms(17), bits);
    FrameScheduler s;
    s.add_reconfig_window(result.start, result.duration(), "dark");
    const int dropped =
        FrameScheduler::dropped_vehicle_frames(s.schedule(60, "day-dusk"));
    std::printf("  %-14s %2d dropped frame(s)\n", to_string(method), dropped);
  }
  return 0;
}
