// Quickstart: train a small model bundle, render one frame per lighting
// condition, detect vehicles with the matching pipeline and print what
// happened. Start here to see the whole public API in ~60 lines.
//
//   ./quickstart [output-dir]
//
// With an output directory, also writes the three annotated frames as PPM.
#include <cstdio>
#include <string>

#include "avd/core/adaptive_system.hpp"
#include "avd/image/draw.hpp"
#include "avd/image/io.hpp"
#include "avd/runtime/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace avd;

  // 1. Train every model the system carries (sizes kept small for speed;
  //    all training data is synthetic and seeded — rerunning reproduces the
  //    exact same models).
  std::printf("training models...\n");
  core::TrainingBudget budget;
  budget.vehicle_pos = budget.vehicle_neg = 80;
  budget.pedestrian_pos = budget.pedestrian_neg = 50;
  budget.dbn_windows_per_class = 100;
  budget.pairing_scenes = 50;
  core::AdaptiveSystemConfig config;
  // A conservative decision threshold keeps the quickly-trained demo models
  // quiet on background; production models (larger TrainingBudget) can run
  // at the default threshold.
  config.sliding.score_threshold = 0.8;
  // Scan pyramid levels and window bands on 4 threads; detections are
  // identical to a pool-less scan, just faster on multi-core hosts.
  runtime::ThreadPool scan_pool(4);
  config.sliding.pool = &scan_pool;
  core::AdaptiveSystem system(core::build_system_models(budget), config);

  // 2. One frame per lighting condition, with ground truth attached.
  for (data::LightingCondition condition :
       {data::LightingCondition::Day, data::LightingCondition::Dusk,
        data::LightingCondition::Dark}) {
    data::SceneGenerator generator(condition, /*seed=*/2024);
    const data::SceneSpec scene = generator.random_scene({480, 270}, 2);
    img::RgbImage frame = data::render_scene(scene);

    // 3. Detect with the pipeline that serves this condition: HOG+SVM with
    //    the day or dusk model, or the DBN taillight pipeline in the dark.
    const std::vector<det::Detection> detections =
        system.detect_vehicles(frame, condition);

    std::vector<img::Rect> truth;
    for (const data::VehicleSpec& v : scene.vehicles) truth.push_back(v.body);
    const det::MatchResult match =
        det::match_detections(detections, truth, 0.25);

    std::printf("%-5s frame: %zu vehicles in truth, %zu detections "
                "(%d hits, %d misses, %d false alarms)\n",
                data::to_string(condition).c_str(), truth.size(),
                detections.size(), match.true_positives,
                match.false_negatives, match.false_positives);

    if (argc > 1) {
      for (const det::Detection& d : detections)
        img::draw_rect(frame, d.box, {0, 255, 60}, 2);
      for (const img::Rect& t : truth)
        img::draw_rect(frame, t, {255, 220, 0}, 1);
      const std::string path = std::string(argv[1]) + "/quickstart_" +
                               data::to_string(condition) + ".ppm";
      img::write_ppm(frame, path);
      std::printf("      wrote %s\n", path.c_str());
    }
  }
  return 0;
}
