// Tracking on top of detection: run the dark-condition detector over a
// night drive and associate detections into tracks with the IoU tracker —
// including coasting across the frame dropped by a partial reconfiguration.
//
//   ./sequence_tracking [n-frames]
#include <cstdio>
#include <cstdlib>

#include "avd/datasets/sequence.hpp"
#include "avd/detect/dark_training.hpp"
#include "avd/detect/tracker.hpp"

int main(int argc, char** argv) {
  using namespace avd;
  const int n_frames = argc > 1 ? std::max(5, std::atoi(argv[1])) : 40;

  std::printf("training dark detector...\n");
  det::DarkTrainingSpec spec;
  spec.windows.per_class = 120;
  spec.pairing_scenes = 60;
  const det::DarkVehicleDetector detector = det::train_dark_detector(spec);

  // A coherent night drive: the same vehicles persist across the segment,
  // drifting with constant per-vehicle velocities, so track identities are
  // meaningful.
  data::SequenceSpec seq_spec;
  seq_spec.frame_size = {480, 270};
  seq_spec.vehicles_per_frame = 2;
  seq_spec.segments = {{data::LightingCondition::Dark, n_frames}};
  seq_spec.coherent_motion = true;
  const data::DriveSequence drive(seq_spec);

  det::IouTracker tracker;
  int detections_total = 0;
  // Simulate the paper's reconfiguration drop: one frame in the middle has
  // no detector output at all.
  const int dropped_frame = n_frames / 2;

  for (int f = 0; f < drive.frame_count(); ++f) {
    std::vector<det::Detection> dets;
    if (f != dropped_frame)
      dets = detector.detect(data::render_scene(drive.frame(f).scene));
    detections_total += static_cast<int>(dets.size());
    const auto confirmed = tracker.update(dets);

    if (f % 10 == 0 || f == dropped_frame) {
      std::printf("frame %3d%s: %zu detections, %zu confirmed tracks (",
                  f, f == dropped_frame ? " [DROPPED]" : "", dets.size(),
                  confirmed.size());
      for (const det::Track& t : confirmed)
        std::printf("#%llu ", static_cast<unsigned long long>(t.id));
      std::printf(")\n");
    }
  }

  std::printf("\n%d detections over %d frames -> %llu tracks created\n",
              detections_total, drive.frame_count(),
              static_cast<unsigned long long>(tracker.total_tracks_created()));
  std::printf("tracks alive at end: %zu\n", tracker.tracks().size());
  return 0;
}
