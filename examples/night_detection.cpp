// Deep dive into the dark-condition detector (paper §III-B): train the
// taillight DBN and pairing SVM, then walk one dark frame through every
// stage, printing intermediate results — the programmatic version of
// Figs. 3-5.
//
//   ./night_detection [output-dir]
#include <cstdio>
#include <string>

#include "avd/detect/dark_training.hpp"
#include "avd/image/color.hpp"
#include "avd/image/draw.hpp"
#include "avd/image/io.hpp"
#include "avd/image/threshold.hpp"

int main(int argc, char** argv) {
  using namespace avd;

  std::printf("training taillight DBN (81-20-8 -> 4 classes) and pairing "
              "SVM...\n");
  det::DarkTrainingSpec spec;
  spec.windows.per_class = 150;
  spec.pairing_scenes = 80;
  const det::DarkVehicleDetector detector = det::train_dark_detector(spec);

  // A night scene: two vehicles, street lights, an oncoming headlight pair
  // and a red traffic signal as distractors.
  data::SceneGenerator generator(data::LightingCondition::Dark, 20190325);
  const data::SceneSpec scene = generator.random_scene({640, 360}, 2);
  img::RgbImage frame = data::render_scene(scene);
  std::printf("\nscene: %zu vehicles, %zu distractor lights\n",
              scene.vehicles.size(), scene.distractors.size());

  // Stage 1-2: chroma/luma split, threshold, AND, downsample, closing.
  const img::ImageU8 mask = detector.preprocess(frame);
  std::printf("stage 1-2 (threshold + downsample + closing): %zu of %zu "
              "pixels survive (%.3f%%)\n",
              img::count_nonzero(mask), mask.pixel_count(),
              100.0 * static_cast<double>(img::count_nonzero(mask)) /
                  static_cast<double>(mask.pixel_count()));

  // Stage 3: sliding 9x9 DBN over candidate blobs.
  const std::vector<det::TaillightDetection> lights =
      detector.detect_taillights(mask);
  std::printf("stage 3 (sliding DBN): %zu taillight candidates\n",
              lights.size());
  for (const det::TaillightDetection& t : lights)
    std::printf("  at (%3d,%3d) ds-px  class %-11s confidence %.2f  blob "
                "%lldpx\n",
                t.center.x, t.center.y, data::to_string(t.cls), t.confidence,
                static_cast<long long>(t.blob_area));

  // Stage 4: spatial correlation & matching.
  const std::vector<det::Detection> detections = detector.detect(frame);
  std::printf("stage 4 (pairing SVM): %zu vehicles detected\n",
              detections.size());
  std::vector<img::Rect> truth;
  for (const data::VehicleSpec& v : scene.vehicles) truth.push_back(v.body);
  const det::MatchResult match = det::match_detections(detections, truth, 0.25);
  std::printf("vs ground truth: %d hits, %d misses, %d false alarms\n",
              match.true_positives, match.false_negatives,
              match.false_positives);

  if (argc > 1) {
    const std::string dir = argv[1];
    img::write_ppm(frame, dir + "/night_input.ppm");
    img::write_pgm(mask, dir + "/night_mask.pgm");
    img::RgbImage annotated = frame;
    for (const det::Detection& d : detections)
      img::draw_rect(annotated, d.box, {0, 255, 60}, 2);
    for (const det::TaillightDetection& t : lights) {
      const int f = detector.config().downsample_factor;
      img::draw_rect(annotated, img::scaled(img::inflated(t.blob_box, 1),
                                            f, f),
                     {255, 120, 0}, 1);
    }
    img::write_ppm(annotated, dir + "/night_annotated.ppm");
    std::printf("wrote %s/night_{input,mask,annotated}.{ppm,pgm}\n",
                dir.c_str());
  }
  return 0;
}
